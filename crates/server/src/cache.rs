//! The sharded-LRU embedding cache.
//!
//! The daemon's whole reason to exist is that Theorem-1 construction is
//! the expensive part of serving a request: embeddings are pure functions
//! of `(family, seed, nodes → r, theorem)`, so concurrent `Simulate`
//! requests for the same guest should build once and share. Entries are
//! `Arc<XEmbedding>` — a hit clones a pointer, never the map — and the
//! key space is split over [`SHARDS`] independently-locked shards so the
//! worker pool doesn't serialise on one mutex. Hit/miss tallies are
//! relaxed atomics readable while the workers run.
//!
//! A capacity of 0 disables caching entirely (every lookup misses, every
//! insert is dropped) — the cold-cache baseline `loadgen` compares
//! against.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use xtree_core::XEmbedding;

/// Number of independently-locked shards.
pub const SHARDS: usize = 8;

/// What an embedding is a pure function of. `nodes` determines the host
/// height `r` (the optimal X-tree for the guest at the theorem's load),
/// so the key is exactly the `(family, seed, r, theorem)` identity of a
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EmbeddingKey {
    /// Index into `TreeFamily::ALL`.
    pub family: u8,
    /// Guest size (determines the host height).
    pub nodes: u64,
    /// Tree-generation seed.
    pub seed: u64,
    /// 1 = Theorem 1, 2 = Theorem 2 (injectivized).
    pub theorem: u8,
    /// Host-topology tag (`xtree_host::HOST_XTREE` etc.). The cached
    /// `XEmbedding` is host-independent — it is always the Theorem-1/2
    /// X-tree map that the host backends re-interpret — but the key keeps
    /// the tag so per-host request populations stay distinguishable and a
    /// future host-specific artifact can slot in without a format change.
    pub host: u8,
}

struct Entry {
    emb: Arc<XEmbedding>,
    /// Shard-local logical clock value of the last touch.
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<EmbeddingKey, Entry>,
    tick: u64,
}

/// A fixed-capacity, sharded, least-recently-used embedding cache.
pub struct EmbeddingCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard; 0 disables the cache.
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EmbeddingCache {
    /// A cache holding at most `cap` embeddings in total (rounded up to a
    /// multiple of [`SHARDS`]); `cap = 0` disables caching.
    pub fn new(cap: usize) -> Self {
        EmbeddingCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: cap.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &EmbeddingKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the
    /// hit/miss either way.
    pub fn get(&self, key: &EmbeddingKey) -> Option<Arc<XEmbedding>> {
        if self.per_shard_cap == 0 {
            self.misses.fetch_add(1, Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let emb = Arc::clone(&entry.emb);
                drop(shard);
                self.hits.fetch_add(1, Relaxed);
                Some(emb)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least-recently
    /// used entry when it is full. No-op on a disabled cache.
    ///
    /// Two workers racing on the same cold key may both build and both
    /// insert; the second insert just replaces the first with an equal
    /// value, so correctness is unaffected — the race costs one duplicate
    /// construction, not a wrong answer.
    pub fn insert(&self, key: EmbeddingKey, emb: Arc<XEmbedding>) {
        if self.per_shard_cap == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("cache poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_cap {
            // O(shard) scan for the LRU victim: shards are small (cap /
            // SHARDS entries), so a linked-list LRU would buy nothing.
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(
            key,
            Entry {
                emb,
                last_used: tick,
            },
        );
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Embeddings currently held across all shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").map.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_topology::Address;

    fn key(seed: u64) -> EmbeddingKey {
        EmbeddingKey {
            family: 0,
            nodes: 48,
            seed,
            theorem: 1,
            host: 0,
        }
    }

    fn emb(height: u8) -> Arc<XEmbedding> {
        Arc::new(XEmbedding {
            height,
            map: vec![Address::ROOT],
        })
    }

    #[test]
    fn hit_after_insert_shares_the_allocation() {
        let c = EmbeddingCache::new(8);
        assert!(c.get(&key(1)).is_none());
        let e = emb(3);
        c.insert(key(1), Arc::clone(&e));
        let back = c.get(&key(1)).expect("hit");
        assert!(Arc::ptr_eq(&back, &e), "hits share, never copy");
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let c = EmbeddingCache::new(64);
        c.insert(key(1), emb(1));
        c.insert(key(2), emb(2));
        let k3 = EmbeddingKey {
            theorem: 2,
            ..key(1)
        };
        c.insert(k3, emb(3));
        assert_eq!(c.entries(), 3);
        assert_eq!(c.get(&key(1)).unwrap().height, 1);
        assert_eq!(c.get(&k3).unwrap().height, 3);
    }

    #[test]
    fn lru_eviction_keeps_the_recently_touched() {
        // One entry per shard: every insert past the first in a shard
        // evicts its LRU. Use keys that land in the same shard by brute
        // force: insert many and cap total growth instead.
        let c = EmbeddingCache::new(8); // per-shard cap 1
        for s in 0..64 {
            c.insert(key(s), emb((s % 50) as u8));
        }
        assert!(
            c.entries() <= SHARDS,
            "cap 8 across {SHARDS} shards holds ≤ 1 each, got {}",
            c.entries()
        );
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let c = EmbeddingCache::new(0);
        c.insert(key(1), emb(1));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.entries(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 1, "disabled lookups still count misses");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = EmbeddingCache::new(32);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = key(i % 8);
                        if c.get(&k).is_none() {
                            c.insert(k, emb(t));
                        }
                    }
                });
            }
        });
        assert_eq!(c.hits() + c.misses(), 400);
        assert!(c.entries() <= 8);
    }
}

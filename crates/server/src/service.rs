//! Request execution: what a worker thread does with a pooled request.
//!
//! Validation happens here, not in the codec — the wire layer moves any
//! well-formed message, and the service decides whether the values make
//! sense (`family` must index `TreeFamily::ALL`, `theorem` must be 1 or
//! 2, `nodes` is capped). The embedding itself is a pure function of the
//! request key, fetched from the shared cache or built via the Theorem-1
//! construction (plus Theorem-2 injectivization) on a miss.

// `Result<_, Response>` keeps the typed error frame as the error value
// on the compute path; `Response` is as large as its biggest variant
// (`StatsOk`) but these calls are per-request, not per-byte.
#![allow(clippy::result_large_err)]

use crate::cache::{EmbeddingCache, EmbeddingKey};
use crate::metrics::ServerMetrics;
use crate::wire::{Request, Response, WireReport, ERR_BAD_REQUEST, ERR_INTERNAL, WORKLOAD_ALL};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;
use xtree_core::theorem1::{EmbedOptions, Theorem1Scratch};
use xtree_core::{evaluate, metrics::edge_congestion, theorem1, theorem2, XEmbedding};
use xtree_host::{guest_map, host_label, AnyHost, Host, HOST_XTREE};
use xtree_sim::workload::WORKLOADS;
use xtree_sim::{
    compute_load, congestion, simulate_all_with, simulate_one_with, Network, SimReport,
};
use xtree_topology::XTree;
use xtree_trees::{BinaryTree, TreeFamily};

/// Largest guest a single request may ask for: a million-node tree embeds
/// in well under a second, and the cap keeps one request from pinning a
/// worker (and the cache from holding arbitrarily large maps).
pub const MAX_NODES: u64 = 1 << 20;

fn bad(message: impl Into<String>) -> Response {
    Response::Error {
        code: ERR_BAD_REQUEST,
        message: message.into(),
    }
}

/// The typed reply for work whose deadline budget expired before it could
/// run. `stage` names where the budget died (admission, the queue, the
/// router's replay loop) so a client log pinpoints the bottleneck.
pub fn deadline_reject(stage: &str) -> Response {
    Response::Error {
        code: crate::wire::ERR_DEADLINE,
        message: format!("deadline budget expired ({stage})"),
    }
}

/// Resolves the validated (family, tree) pair of a request key.
fn make_tree(family: u8, nodes: u64, seed: u64) -> Result<(TreeFamily, BinaryTree), Response> {
    let fam = *TreeFamily::ALL
        .get(usize::from(family))
        .ok_or_else(|| bad(format!("unknown family index {family}")))?;
    if nodes == 0 || nodes > MAX_NODES {
        return Err(bad(format!(
            "nodes must be in 1..={MAX_NODES}, got {nodes}"
        )));
    }
    Ok((fam, fam.generate_seeded(nodes as usize, seed)))
}

thread_local! {
    /// One Theorem-1 scratch per worker thread: every cache-miss build on
    /// a worker reuses the previous build's buffers (DESIGN.md §13), so
    /// steady-state misses allocate only the result itself.
    static SCRATCH: RefCell<Theorem1Scratch> = RefCell::new(Theorem1Scratch::new());
}

/// The embedding for a key: cache hit, or build-and-insert. Returns the
/// embedding and whether it was a hit.
fn embedding(
    cache: &EmbeddingCache,
    key: EmbeddingKey,
    tree: &BinaryTree,
) -> Result<(Arc<XEmbedding>, bool), Response> {
    if let Some(emb) = cache.get(&key) {
        return Ok((emb, true));
    }
    let emb = SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        match key.theorem {
            1 => Ok(theorem1::embed_with_scratch(tree, EmbedOptions::default(), scratch).emb),
            2 => Ok(theorem2::injectivize(
                &theorem1::embed_with_scratch(tree, EmbedOptions::default(), scratch).emb,
            )),
            t => Err(bad(format!("theorem must be 1 or 2, got {t}"))),
        }
    })?;
    let emb = Arc::new(emb);
    cache.insert(key, Arc::clone(&emb));
    Ok((emb, false))
}

/// [`embedding`], timed into the hit/miss-split construction histograms.
fn timed_embedding(
    cache: &EmbeddingCache,
    key: EmbeddingKey,
    tree: &BinaryTree,
    metrics: &ServerMetrics,
) -> Result<(Arc<XEmbedding>, bool), Response> {
    let t0 = Instant::now();
    let res = embedding(cache, key, tree);
    if let Ok((_, hit)) = &res {
        metrics.observe_embed_us(t0.elapsed().as_micros() as u64, *hit);
    }
    res
}

fn wire_report(r: &SimReport) -> WireReport {
    let workload = WORKLOADS
        .iter()
        .position(|&w| w == r.workload)
        .unwrap_or(usize::from(WORKLOAD_ALL)) as u8;
    WireReport {
        workload,
        cycles: u64::from(r.cycles),
        ideal_cycles: u64::from(r.ideal_cycles),
        max_link_traffic: u64::from(r.max_link_traffic),
    }
}

/// Resolves the servable host backend for a non-X-tree request, or the
/// typed rejection when the tag is unknown / the backend is unavailable at
/// this height (the universal graph's BFS table is capped).
fn host_net(host: u8, height: u8) -> Result<AnyHost, Response> {
    AnyHost::for_xtree_height(host, height).ok_or_else(|| match host_label(host) {
        Some(label) => bad(format!(
            "host '{label}' is unavailable at X-tree height {height}"
        )),
        None => bad(format!("unknown host tag {host}")),
    })
}

/// Executes one pooled request against the shared cache, reporting engine
/// events and embed-construction latency to `metrics`. Only `Embed` and
/// `Simulate` arrive here — control requests are answered inline by the
/// connection handler. `host` selects the host topology the embedding is
/// served on ([`HOST_XTREE`] is the wire default and the pre-host
/// behavior, bit for bit).
pub fn handle_compute(
    req: &Request,
    host: u8,
    cache: &EmbeddingCache,
    metrics: &ServerMetrics,
) -> Response {
    // Reject junk tags before any compute (and before they become cache
    // keys); height-dependent availability is checked once the height is
    // known.
    if host_label(host).is_none() {
        return bad(format!("unknown host tag {host}"));
    }
    match *req {
        Request::Embed {
            family,
            nodes,
            seed,
            theorem,
        } => {
            let key = EmbeddingKey {
                family,
                nodes,
                seed,
                theorem,
                host,
            };
            let (_, tree) = match make_tree(family, nodes, seed) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let (emb, cached) = match timed_embedding(cache, key, &tree, metrics) {
                Ok(e) => e,
                Err(resp) => return resp,
            };
            if host == HOST_XTREE {
                let stats = evaluate(&tree, &emb);
                let xt = XTree::new(emb.height);
                let congestion = edge_congestion(&tree, &emb, &xt);
                return Response::EmbedOk {
                    height: emb.height,
                    dilation: u64::from(stats.dilation),
                    max_load: u64::from(stats.max_load),
                    congestion: u64::from(congestion),
                    injective: stats.injective,
                    cached,
                };
            }
            let net = match host_net(host, emb.height) {
                Ok(n) => n,
                Err(resp) => return resp,
            };
            let map = guest_map(host, &emb).expect("tag validated by host_net");
            let dilation = tree
                .edges()
                .map(|(p, c)| net.distance(map[p.index()], map[c.index()]))
                .max()
                .unwrap_or(0);
            let max_load = compute_load(&net, &tree, &map);
            let cong = match congestion(&net, &tree, &map) {
                Ok(c) => c,
                Err(e) => {
                    return Response::Error {
                        code: ERR_INTERNAL,
                        message: format!("host routing failed: {e}"),
                    }
                }
            };
            Response::EmbedOk {
                // The X-tree height the map was built for — the shared
                // size parameter every host derives its own order from.
                height: emb.height,
                dilation: u64::from(dilation),
                max_load: u64::from(max_load),
                congestion: u64::from(cong),
                injective: max_load <= 1,
                cached,
            }
        }
        Request::Simulate {
            family,
            nodes,
            seed,
            theorem,
            workload,
        } => {
            if workload != WORKLOAD_ALL && usize::from(workload) >= WORKLOADS.len() {
                return bad(format!("workload must be 0..{} or 255", WORKLOADS.len()));
            }
            let key = EmbeddingKey {
                family,
                nodes,
                seed,
                theorem,
                host,
            };
            let (_, tree) = match make_tree(family, nodes, seed) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let (emb, cached) = match timed_embedding(cache, key, &tree, metrics) {
                Ok(e) => e,
                Err(resp) => return resp,
            };
            let mut sink = &metrics.sim;
            let reports = if host == HOST_XTREE {
                let net = Network::xtree(&XTree::new(emb.height));
                if workload == WORKLOAD_ALL {
                    simulate_all_with(&net, &tree, &*emb, &mut sink)
                } else {
                    simulate_one_with(&net, &tree, &*emb, usize::from(workload), &mut sink)
                        .map(|r| vec![r])
                }
            } else {
                let net = match host_net(host, emb.height) {
                    Ok(n) => n,
                    Err(resp) => return resp,
                };
                let map = guest_map(host, &emb).expect("tag validated by host_net");
                if workload == WORKLOAD_ALL {
                    simulate_all_with(&net, &tree, &map, &mut sink)
                } else {
                    simulate_one_with(&net, &tree, &map, usize::from(workload), &mut sink)
                        .map(|r| vec![r])
                }
            };
            match reports {
                Ok(reports) => Response::SimulateOk {
                    cached,
                    reports: reports.iter().map(wire_report).collect(),
                },
                Err(e) => Response::Error {
                    code: ERR_INTERNAL,
                    message: format!("simulation failed: {e}"),
                },
            }
        }
        // Control requests never reach the pool.
        Request::Stats | Request::Health | Request::Shutdown => Response::Error {
            code: ERR_INTERNAL,
            message: "control request routed to a worker".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> ServerMetrics {
        ServerMetrics::new()
    }

    #[test]
    fn embed_matches_direct_construction() {
        let cache = EmbeddingCache::new(8);
        let req = Request::Embed {
            family: 0, // path
            nodes: 240,
            seed: 7,
            theorem: 1,
        };
        let metrics = counters();
        let resp = handle_compute(&req, HOST_XTREE, &cache, &metrics);
        let Response::EmbedOk {
            height,
            dilation,
            max_load,
            cached,
            ..
        } = resp
        else {
            panic!("expected EmbedOk, got {resp:?}");
        };
        assert_eq!(height, 3);
        assert!(dilation <= 3);
        assert_eq!(max_load, 16);
        assert!(!cached, "first request must miss");
        // Second identical request hits.
        let resp = handle_compute(&req, HOST_XTREE, &cache, &metrics);
        assert!(matches!(resp, Response::EmbedOk { cached: true, .. }));
        // One construction landed in each side of the split histogram.
        let prom = metrics.to_prometheus(&cache, 0);
        assert!(prom.contains("xtree_server_embed_miss_latency_us_count 1"));
        assert!(prom.contains("xtree_server_embed_hit_latency_us_count 1"));
    }

    #[test]
    fn simulate_single_workload_matches_the_all_run() {
        let cache = EmbeddingCache::new(8);
        let base = |workload| Request::Simulate {
            family: 2, // caterpillar
            nodes: 112,
            seed: 5,
            theorem: 1,
            workload,
        };
        let all = handle_compute(&base(WORKLOAD_ALL), HOST_XTREE, &cache, &counters());
        let Response::SimulateOk { reports: all, .. } = all else {
            panic!("expected SimulateOk");
        };
        assert_eq!(all.len(), 4);
        for (i, expect) in all.iter().enumerate() {
            let one = handle_compute(&base(i as u8), HOST_XTREE, &cache, &counters());
            let Response::SimulateOk { reports: one, .. } = one else {
                panic!("expected SimulateOk");
            };
            assert_eq!(one.len(), 1);
            assert_eq!(&one[0], expect, "workload {i} must match the all-run");
        }
    }

    #[test]
    fn theorem2_requests_are_injective() {
        let cache = EmbeddingCache::new(8);
        let resp = handle_compute(
            &Request::Embed {
                family: 3, // broom
                nodes: 48,
                seed: 7,
                theorem: 2,
            },
            HOST_XTREE,
            &cache,
            &counters(),
        );
        let Response::EmbedOk {
            injective,
            max_load,
            ..
        } = resp
        else {
            panic!("expected EmbedOk, got {resp:?}");
        };
        assert!(injective);
        assert_eq!(max_load, 1);
    }

    #[test]
    fn invalid_fields_return_typed_errors() {
        let cache = EmbeddingCache::new(8);
        let sim = counters();
        for req in [
            Request::Embed {
                family: 200,
                nodes: 48,
                seed: 7,
                theorem: 1,
            },
            Request::Embed {
                family: 0,
                nodes: 0,
                seed: 7,
                theorem: 1,
            },
            Request::Embed {
                family: 0,
                nodes: MAX_NODES + 1,
                seed: 7,
                theorem: 1,
            },
            Request::Embed {
                family: 0,
                nodes: 48,
                seed: 7,
                theorem: 3,
            },
            Request::Simulate {
                family: 0,
                nodes: 48,
                seed: 7,
                theorem: 1,
                workload: 4,
            },
        ] {
            let resp = handle_compute(&req, HOST_XTREE, &cache, &sim);
            assert!(
                matches!(
                    resp,
                    Response::Error {
                        code: ERR_BAD_REQUEST,
                        ..
                    }
                ),
                "{req:?} must be rejected, got {resp:?}"
            );
        }
    }

    #[test]
    fn simulations_report_engine_events() {
        let cache = EmbeddingCache::new(8);
        let sim = counters();
        handle_compute(
            &Request::Simulate {
                family: 0,
                nodes: 112,
                seed: 7,
                theorem: 1,
                workload: 0,
            },
            HOST_XTREE,
            &cache,
            &sim,
        );
        let snap = sim.sim.snapshot();
        assert!(snap.hops > 0, "engine events must land in the shared sink");
        assert!(snap.delivered > 0);
    }
}

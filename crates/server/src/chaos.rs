//! Seeded chaos transport: deterministic fault injection for the wire.
//!
//! The same discipline `sim::fault` brings to the simulation engine,
//! applied to sockets. A [`ChaosPlan`] is `(seed, profile)`; from it every
//! connection derives an independent SplitMix64 stream, so the *entire*
//! fault schedule — which bytes get delayed, shortened, corrupted, which
//! connections get reset mid-frame or refused outright — is a pure
//! function of `(seed, connection id)`. Run the same plan twice and the
//! same faults hit the same bytes.
//!
//! Determinism survives the one thing a socket cannot promise: *chunking*.
//! TCP may hand `read()` any prefix of what the peer sent, so fault
//! decisions keyed on "the Nth read call" would differ run to run. Instead
//! each direction of a connection is a *lane* measured in absolute byte
//! positions, divided into fixed [`WINDOW`]-byte windows. Entering a
//! window draws that window's faults once (five draws, always, so the
//! stream never desynchronizes); each fault anchors to a byte position and
//! fires when the lane crosses it. However the kernel slices the stream,
//! positions — and therefore faults — are identical.
//!
//! A reset or truncation *poisons* the connection: every later operation
//! fails instantly until the owner reconnects and calls
//! [`ChaosConn::reconnected`], which clears the poison but keeps lane
//! positions — a consumed fault never replays, so a reconnect loop cannot
//! trip over the same reset forever.
//!
//! [`ChaosStream`] wraps a `TcpStream` and applies a lane per direction;
//! with no chaos attached it delegates untouched (the production path pays
//! one `Option` check).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Lane window size in bytes: fault draws happen once per window, and
/// every injected fault anchors to a byte position inside its window.
pub const WINDOW: u64 = 256;

/// Per-window fault rates, each in events per thousand windows (‰), plus
/// the delay magnitude cap. All-zero means the stream is untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosProfile {
    /// ‰ of windows whose first operation sleeps before moving bytes.
    pub delay_per_mille: u16,
    /// Upper bound on one injected delay, microseconds.
    pub max_delay_us: u64,
    /// ‰ of windows whose first operation is cut to half its length.
    pub short_per_mille: u16,
    /// ‰ of windows with one byte XOR-corrupted in transit.
    pub corrupt_per_mille: u16,
    /// ‰ of windows where the connection is reset on entry (no bytes).
    pub reset_per_mille: u16,
    /// ‰ of windows where the stream delivers a partial frame and then
    /// dies — bytes flow up to an anchor position, then the conn resets.
    pub truncate_per_mille: u16,
    /// ‰ of connect attempts refused outright (synthetic `ECONNREFUSED`).
    pub refuse_per_mille: u16,
}

impl ChaosProfile {
    /// No faults at all; wrapping with this profile is inert.
    pub fn off() -> Self {
        ChaosProfile::default()
    }

    /// Mostly delays and short operations; rare kills.
    pub fn light() -> Self {
        ChaosProfile {
            delay_per_mille: 50,
            max_delay_us: 2_000,
            short_per_mille: 100,
            corrupt_per_mille: 2,
            reset_per_mille: 2,
            truncate_per_mille: 2,
            refuse_per_mille: 5,
        }
    }

    /// Noticeable fault pressure on every mechanism.
    pub fn medium() -> Self {
        ChaosProfile {
            delay_per_mille: 100,
            max_delay_us: 5_000,
            short_per_mille: 200,
            corrupt_per_mille: 10,
            reset_per_mille: 10,
            truncate_per_mille: 10,
            refuse_per_mille: 20,
        }
    }

    /// Hostile network: frequent kills, heavy delays.
    pub fn heavy() -> Self {
        ChaosProfile {
            delay_per_mille: 200,
            max_delay_us: 10_000,
            short_per_mille: 400,
            corrupt_per_mille: 30,
            reset_per_mille: 30,
            truncate_per_mille: 30,
            refuse_per_mille: 60,
        }
    }

    /// Parses a profile: a preset name (`off`, `light`, `medium`,
    /// `heavy`) or a comma-joined list of `kind:rate` clauses where
    /// `kind` is one of `delay` (with an optional `:max_us` third part),
    /// `short`, `corrupt`, `reset`, `truncate`, `refuse`, and `rate` is
    /// in ‰ (0..=1000). Unlisted kinds stay at zero.
    ///
    /// ```
    /// use xtree_server::chaos::ChaosProfile;
    /// let p = ChaosProfile::parse("delay:100:3000,reset:10").unwrap();
    /// assert_eq!(p.delay_per_mille, 100);
    /// assert_eq!(p.max_delay_us, 3000);
    /// assert_eq!(p.reset_per_mille, 10);
    /// assert_eq!(p.corrupt_per_mille, 0);
    /// ```
    ///
    /// # Errors
    /// A human-readable message naming the malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "off" => return Ok(ChaosProfile::off()),
            "light" => return Ok(ChaosProfile::light()),
            "medium" => return Ok(ChaosProfile::medium()),
            "heavy" => return Ok(ChaosProfile::heavy()),
            _ => {}
        }
        let mut p = ChaosProfile::off();
        for clause in spec.split(',') {
            let mut parts = clause.split(':');
            let kind = parts.next().unwrap_or("");
            let rate: u16 = parts
                .next()
                .ok_or_else(|| format!("chaos clause `{clause}` is missing its rate"))?
                .parse()
                .map_err(|_| format!("chaos clause `{clause}` has a non-numeric rate"))?;
            if rate > 1000 {
                return Err(format!(
                    "chaos clause `{clause}`: rate {rate}‰ exceeds 1000"
                ));
            }
            let third = parts.next();
            if parts.next().is_some() {
                return Err(format!("chaos clause `{clause}` has too many parts"));
            }
            if third.is_some() && kind != "delay" {
                return Err(format!(
                    "chaos clause `{clause}`: only delay takes a third part"
                ));
            }
            match kind {
                "delay" => {
                    p.delay_per_mille = rate;
                    p.max_delay_us = match third {
                        Some(us) => us.parse().map_err(|_| {
                            format!("chaos clause `{clause}` has a non-numeric max_us")
                        })?,
                        None => 5_000,
                    };
                }
                "short" => p.short_per_mille = rate,
                "corrupt" => p.corrupt_per_mille = rate,
                "reset" => p.reset_per_mille = rate,
                "truncate" => p.truncate_per_mille = rate,
                "refuse" => p.refuse_per_mille = rate,
                other => return Err(format!("unknown chaos fault kind `{other}`")),
            }
        }
        Ok(p)
    }

    /// True when every rate is zero — the plan injects nothing.
    pub fn is_off(&self) -> bool {
        *self == ChaosProfile::off()
    }
}

/// The seeded chaos schedule for one process: hand [`ChaosPlan::conn`]
/// a stable connection id and it derives that connection's independent
/// fault stream. Same `(seed, profile, id)` → same faults, always.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Root seed; each connection's stream is split from it.
    pub seed: u64,
    /// Fault rates shared by every connection under this plan.
    pub profile: ChaosProfile,
}

impl ChaosPlan {
    /// A plan from a seed and profile.
    pub fn new(seed: u64, profile: ChaosProfile) -> Self {
        ChaosPlan { seed, profile }
    }

    /// The fault stream for connection `id`, ready to share between the
    /// read and write halves of one socket.
    pub fn conn(&self, id: u64) -> Arc<Mutex<ChaosConn>> {
        Arc::new(Mutex::new(ChaosConn::new(self, id)))
    }
}

/// SplitMix64 step — the workspace's standard seeded stream (the same
/// generator `sim::fault` splits its plans from).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How many times each injected fault fired on one connection. Counts are
/// positional, so they are identical across runs of the same plan — the
/// chaos bench writes them (not wall-clock) into its byte-compared JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Injected sleeps.
    pub delays: u64,
    /// Operations cut short.
    pub shorts: u64,
    /// Bytes XOR-corrupted.
    pub corrupts: u64,
    /// Window-entry connection resets.
    pub resets: u64,
    /// Mid-frame truncation kills.
    pub truncates: u64,
    /// Connect attempts refused.
    pub refusals: u64,
}

impl ChaosCounts {
    /// Field-wise sum, for aggregating per-connection counts.
    pub fn add(&mut self, other: &ChaosCounts) {
        self.delays += other.delays;
        self.shorts += other.shorts;
        self.corrupts += other.corrupts;
        self.resets += other.resets;
        self.truncates += other.truncates;
        self.refusals += other.refusals;
    }

    /// Total faults of every kind.
    pub fn total(&self) -> u64 {
        self.delays + self.shorts + self.corrupts + self.resets + self.truncates + self.refusals
    }
}

/// One direction of a connection: an absolute byte position, a private
/// SplitMix64 stream advanced once per window, and the current window's
/// pending (not yet crossed) faults.
struct Lane {
    rng: u64,
    /// Absolute bytes moved in this direction so far.
    pos: u64,
    /// Index of the last window whose faults were drawn (`u64::MAX` =
    /// none yet).
    drawn: u64,
    /// Sleep pending for the first operation of the current window.
    delay_us: Option<u64>,
    /// The first operation of the current window is halved.
    short_pending: bool,
    /// Absolute position of a byte to XOR-corrupt, once crossed.
    corrupt_at: Option<u64>,
    /// Absolute position after which the connection dies mid-frame.
    truncate_at: Option<u64>,
    /// The current window resets the connection on entry.
    reset_pending: bool,
}

impl Lane {
    fn new(seed: u64) -> Self {
        Lane {
            rng: seed,
            pos: 0,
            drawn: u64::MAX,
            delay_us: None,
            short_pending: false,
            corrupt_at: None,
            truncate_at: None,
            reset_pending: false,
        }
    }

    /// Draws the faults for the window containing `pos`, exactly once per
    /// window and always with five generator steps, so the stream stays
    /// aligned no matter which faults the profile enables.
    fn draw_window(&mut self, profile: &ChaosProfile) {
        let window = self.pos / WINDOW;
        if self.drawn == window {
            return;
        }
        self.drawn = window;
        let base = window * WINDOW;
        let hit = |r: u64, per_mille: u16| (r % 1000) < u64::from(per_mille);
        let anchor = |r: u64| base + (r >> 10) % WINDOW;

        let r = splitmix64(&mut self.rng);
        self.delay_us = hit(r, profile.delay_per_mille).then(|| {
            let span = profile.max_delay_us.max(1);
            1 + (r >> 10) % span
        });
        let r = splitmix64(&mut self.rng);
        self.short_pending = hit(r, profile.short_per_mille);
        let r = splitmix64(&mut self.rng);
        self.corrupt_at = hit(r, profile.corrupt_per_mille).then(|| anchor(r));
        let r = splitmix64(&mut self.rng);
        self.truncate_at = hit(r, profile.truncate_per_mille).then(|| anchor(r));
        let r = splitmix64(&mut self.rng);
        self.reset_pending = hit(r, profile.reset_per_mille);
    }
}

/// What one socket operation must do, decided under the lock and executed
/// outside it.
#[derive(Debug, Default)]
struct OpPlan {
    /// Sleep this long before touching the socket.
    delay_us: u64,
    /// Fail with a synthetic reset before moving any bytes.
    fail: bool,
    /// Move at most this many bytes (window- and fault-clamped).
    allow: usize,
    /// XOR-flip the byte at this offset of the transferred span.
    corrupt_off: Option<usize>,
}

/// Which lane an operation runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    /// Bytes arriving from the peer.
    Read,
    /// Bytes leaving for the peer.
    Write,
}

/// One connection's deterministic fault state: a lane per direction plus
/// the connect-attempt stream and the poison flag.
pub struct ChaosConn {
    profile: ChaosProfile,
    read: Lane,
    write: Lane,
    /// Private stream for connect-attempt refusals.
    connect_rng: u64,
    /// A reset/truncation killed the conn; cleared by [`reconnected`].
    ///
    /// [`reconnected`]: ChaosConn::reconnected
    poisoned: bool,
    counts: ChaosCounts,
}

impl ChaosConn {
    fn new(plan: &ChaosPlan, id: u64) -> Self {
        // Decorrelate connection streams from each other and from the
        // root seed with one multiply-fold plus a burn-in draw.
        let mut seed = plan.seed ^ id.wrapping_mul(0xA076_1D64_78BD_642F);
        let _ = splitmix64(&mut seed);
        let read_seed = splitmix64(&mut seed);
        let write_seed = splitmix64(&mut seed);
        let connect_rng = splitmix64(&mut seed);
        ChaosConn {
            profile: plan.profile,
            read: Lane::new(read_seed),
            write: Lane::new(write_seed),
            connect_rng,
            poisoned: false,
            counts: ChaosCounts::default(),
        }
    }

    /// Decides whether the next connect attempt on this connection is
    /// refused. One draw per attempt — deterministic across runs.
    pub fn refuse_connect(&mut self) -> bool {
        let r = splitmix64(&mut self.connect_rng);
        let refused = (r % 1000) < u64::from(self.profile.refuse_per_mille);
        if refused {
            self.counts.refusals += 1;
        }
        refused
    }

    /// The owner re-established the socket after a chaos kill: clear the
    /// poison. Lane positions and consumed faults persist, so the stream
    /// picks up where it died instead of replaying the fatal fault.
    pub fn reconnected(&mut self) {
        self.poisoned = false;
    }

    /// Fault totals so far (positional, hence run-to-run identical).
    pub fn counts(&self) -> ChaosCounts {
        self.counts
    }

    fn lane(&mut self, dir: Dir) -> &mut Lane {
        match dir {
            Dir::Read => &mut self.read,
            Dir::Write => &mut self.write,
        }
    }

    /// Plans one operation of up to `len` bytes in `dir`. Consumes
    /// entry-anchored faults (delay, short, reset) now; position-anchored
    /// faults (corrupt, truncate) are consumed by [`advance`] once the
    /// bytes actually move.
    ///
    /// [`advance`]: ChaosConn::advance
    fn plan(&mut self, dir: Dir, len: usize) -> OpPlan {
        if self.poisoned {
            return OpPlan {
                fail: true,
                ..OpPlan::default()
            };
        }
        if len == 0 {
            return OpPlan::default();
        }
        let profile = self.profile;
        self.lane(dir).draw_window(&profile);
        let lane = match dir {
            Dir::Read => &mut self.read,
            Dir::Write => &mut self.write,
        };
        let mut plan = OpPlan::default();
        if lane.reset_pending {
            lane.reset_pending = false;
            self.counts.resets += 1;
            self.poisoned = true;
            plan.fail = true;
            return plan;
        }
        if let Some(t) = lane.truncate_at {
            if t <= lane.pos {
                lane.truncate_at = None;
                self.counts.truncates += 1;
                self.poisoned = true;
                plan.fail = true;
                return plan;
            }
        }
        if let Some(us) = lane.delay_us.take() {
            self.counts.delays += 1;
            plan.delay_us = us;
        }
        // Clamp to the window edge so every window is entered by exactly
        // one `draw_window`, then to the truncation anchor if one is live.
        let window_end = (lane.pos / WINDOW + 1) * WINDOW;
        let mut allow = (len as u64).min(window_end - lane.pos);
        if let Some(t) = lane.truncate_at {
            allow = allow.min(t - lane.pos);
        }
        if lane.short_pending {
            lane.short_pending = false;
            self.counts.shorts += 1;
            allow = (allow / 2).max(1);
        }
        if let Some(c) = lane.corrupt_at {
            if c >= lane.pos && c < lane.pos + allow {
                plan.corrupt_off = Some((c - lane.pos) as usize);
            }
        }
        plan.allow = allow as usize;
        plan
    }

    /// Records that `n` bytes actually moved in `dir`, consuming any
    /// position-anchored fault the span crossed. Corruption is counted
    /// here, not at plan time: a short read may stop before the anchored
    /// byte, and then nothing was corrupted (the anchor stays pending for
    /// the next operation) — counting on crossing keeps the totals a pure
    /// function of byte positions.
    fn advance(&mut self, dir: Dir, n: usize) {
        let lane = self.lane(dir);
        let end = lane.pos + n as u64;
        let crossed_corrupt = matches!(lane.corrupt_at, Some(c) if c < end);
        if crossed_corrupt {
            lane.corrupt_at = None;
        }
        lane.pos = end;
        if crossed_corrupt {
            self.counts.corrupts += 1;
        }
    }
}

fn synthetic_reset() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::ConnectionReset, "chaos: injected reset")
}

/// A `TcpStream` with an optional seeded fault stream in front of it.
/// With `None` attached every call delegates straight through — the
/// production path is one branch away from the raw socket. All the
/// socket-level controls the serving path uses (`try_clone`, nodelay,
/// read/write timeouts, `shutdown`) are forwarded, so `ChaosStream` is a
/// drop-in stand-in for `TcpStream` in the client and both daemons.
pub struct ChaosStream {
    inner: TcpStream,
    conn: Option<Arc<Mutex<ChaosConn>>>,
}

impl ChaosStream {
    /// Wraps `inner` without any chaos: pure delegation.
    pub fn passthrough(inner: TcpStream) -> Self {
        ChaosStream { inner, conn: None }
    }

    /// Wraps `inner` under `conn`'s fault stream (or none).
    pub fn wrap(inner: TcpStream, conn: Option<Arc<Mutex<ChaosConn>>>) -> Self {
        ChaosStream { inner, conn }
    }

    /// The shared fault state, if chaos is attached.
    pub fn chaos(&self) -> Option<&Arc<Mutex<ChaosConn>>> {
        self.conn.as_ref()
    }

    /// Clones the socket handle; both clones share one fault stream (the
    /// lanes are per-direction, so a reader half and a writer half never
    /// contend over the same lane).
    ///
    /// # Errors
    /// Propagates the OS `dup` failure.
    pub fn try_clone(&self) -> std::io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: self.inner.try_clone()?,
            conn: self.conn.clone(),
        })
    }

    /// See [`TcpStream::set_nodelay`].
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// See [`TcpStream::set_read_timeout`].
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// See [`TcpStream::set_write_timeout`].
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    /// See [`TcpStream::shutdown`].
    ///
    /// # Errors
    /// Propagates the socket failure.
    pub fn shutdown(&self, how: std::net::Shutdown) -> std::io::Result<()> {
        self.inner.shutdown(how)
    }

    /// See [`TcpStream::peer_addr`].
    ///
    /// # Errors
    /// Propagates the socket failure.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    fn plan(&self, dir: Dir, len: usize) -> Option<OpPlan> {
        self.conn
            .as_ref()
            .map(|c| c.lock().expect("chaos poisoned").plan(dir, len))
    }

    fn advance(&self, dir: Dir, n: usize) {
        if let Some(c) = &self.conn {
            c.lock().expect("chaos poisoned").advance(dir, n);
        }
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some(plan) = self.plan(Dir::Read, buf.len()) else {
            return self.inner.read(buf);
        };
        if plan.fail {
            return Err(synthetic_reset());
        }
        if plan.allow == 0 {
            return Ok(0);
        }
        if plan.delay_us > 0 {
            std::thread::sleep(Duration::from_micros(plan.delay_us));
        }
        let n = self.inner.read(&mut buf[..plan.allow])?;
        if let Some(off) = plan.corrupt_off {
            if off < n {
                buf[off] ^= 0x20;
            }
        }
        self.advance(Dir::Read, n);
        Ok(n)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let Some(plan) = self.plan(Dir::Write, buf.len()) else {
            return self.inner.write(buf);
        };
        if plan.fail {
            return Err(synthetic_reset());
        }
        if plan.allow == 0 {
            return Ok(0);
        }
        if plan.delay_us > 0 {
            std::thread::sleep(Duration::from_micros(plan.delay_us));
        }
        let n = match plan.corrupt_off {
            Some(off) if off < plan.allow => {
                let mut tainted = buf[..plan.allow].to_vec();
                tainted[off] ^= 0x20;
                self.inner.write(&tainted)?
            }
            _ => self.inner.write(&buf[..plan.allow])?,
        };
        self.advance(Dir::Write, n);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every fault a lane run produces, normalized to positions. Resets
    /// and truncations both surface as `Kill` — the position tells them
    /// apart when it matters, and both poison the connection identically.
    #[derive(Debug, PartialEq, Eq)]
    enum Event {
        Delay { at: u64, us: u64 },
        Short { at: u64 },
        Corrupt { at: u64 },
        Kill { at: u64 },
    }

    /// Drives `total` bytes through one lane with the given op sizes
    /// (cycled), recording every fault with the position it fired at.
    fn drive(conn: &mut ChaosConn, dir: Dir, total: u64, chunks: &[usize]) -> Vec<Event> {
        let mut events = Vec::new();
        let mut moved = 0u64;
        let mut k = 0usize;
        while moved < total {
            let want = chunks[k % chunks.len()].min((total - moved) as usize);
            k += 1;
            if want == 0 {
                continue;
            }
            let before = conn.counts();
            let pos = match dir {
                Dir::Read => conn.read.pos,
                Dir::Write => conn.write.pos,
            };
            let plan = conn.plan(dir, want);
            if plan.fail {
                events.push(Event::Kill { at: pos });
                conn.reconnected();
                continue;
            }
            if plan.delay_us > 0 {
                events.push(Event::Delay {
                    at: pos,
                    us: plan.delay_us,
                });
            }
            if conn.counts().shorts > before.shorts {
                events.push(Event::Short { at: pos });
            }
            if let Some(off) = plan.corrupt_off {
                events.push(Event::Corrupt {
                    at: pos + off as u64,
                });
            }
            // Pretend the transport moved everything the plan allowed.
            conn.advance(dir, plan.allow);
            moved += plan.allow as u64;
        }
        events
    }

    #[test]
    fn same_plan_same_faults_regardless_of_chunking() {
        let plan = ChaosPlan::new(0xC0DE, ChaosProfile::heavy());
        for id in 0..4u64 {
            let mut a = ChaosConn::new(&plan, id);
            let mut b = ChaosConn::new(&plan, id);
            // Wildly different op sizes must see identical fault
            // positions: decisions are positional, not per-call.
            let ea = drive(&mut a, Dir::Write, 64 * WINDOW, &[1, 7, 3]);
            let eb = drive(&mut b, Dir::Write, 64 * WINDOW, &[256, 13, 64, 999]);
            assert_eq!(ea, eb, "conn {id}");
            assert!(!ea.is_empty(), "heavy profile must inject something");
            assert_eq!(a.counts(), b.counts());
        }
    }

    #[test]
    fn read_and_write_lanes_are_independent_streams() {
        let plan = ChaosPlan::new(7, ChaosProfile::heavy());
        let mut a = ChaosConn::new(&plan, 1);
        let mut b = ChaosConn::new(&plan, 1);
        // Interleaving order must not matter: a's writes all before its
        // reads, b alternating, same totals.
        let wa = drive(&mut a, Dir::Write, 16 * WINDOW, &[19]);
        let ra = drive(&mut a, Dir::Read, 16 * WINDOW, &[19]);
        let mut wb = Vec::new();
        let mut rb = Vec::new();
        for _ in 0..16 {
            wb.extend(drive(&mut b, Dir::Write, WINDOW, &[19]));
            rb.extend(drive(&mut b, Dir::Read, WINDOW, &[19]));
        }
        assert_eq!(wa, wb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn different_conn_ids_get_different_streams() {
        let plan = ChaosPlan::new(42, ChaosProfile::heavy());
        let mut a = ChaosConn::new(&plan, 0);
        let mut b = ChaosConn::new(&plan, 1);
        let ea = drive(&mut a, Dir::Write, 64 * WINDOW, &[64]);
        let eb = drive(&mut b, Dir::Write, 64 * WINDOW, &[64]);
        assert_ne!(ea, eb);
    }

    #[test]
    fn off_profile_is_inert() {
        let plan = ChaosPlan::new(99, ChaosProfile::off());
        let mut c = ChaosConn::new(&plan, 3);
        let events = drive(&mut c, Dir::Write, 64 * WINDOW, &[33]);
        assert!(events.is_empty());
        assert_eq!(c.counts().total(), 0);
        for _ in 0..100 {
            assert!(!c.refuse_connect());
        }
    }

    #[test]
    fn poison_fails_until_reconnected_and_faults_never_replay() {
        // A profile that resets every window: the very first op dies.
        let profile = ChaosProfile {
            reset_per_mille: 1000,
            ..ChaosProfile::off()
        };
        let mut c = ChaosConn::new(&ChaosPlan::new(5, profile), 0);
        assert!(c.plan(Dir::Write, 10).fail);
        // Poisoned: both lanes fail instantly now.
        assert!(c.plan(Dir::Read, 10).fail);
        assert_eq!(c.counts().resets, 1, "poisoned ops are not new resets");
        c.reconnected();
        // The window's reset is consumed; the same window now flows...
        let p = c.plan(Dir::Write, 10);
        assert!(!p.fail);
        c.advance(Dir::Write, p.allow);
        // ...until the lane enters the next window, which resets again.
        let mut moved = p.allow as u64;
        let mut died = false;
        while moved < 2 * WINDOW {
            let p = c.plan(Dir::Write, 64);
            if p.fail {
                died = true;
                break;
            }
            c.advance(Dir::Write, p.allow);
            moved += p.allow as u64;
        }
        assert!(died, "every window resets under a 1000‰ profile");
    }

    #[test]
    fn refusal_stream_is_deterministic() {
        let plan = ChaosPlan::new(0xBEEF, ChaosProfile::heavy());
        let seq = |id: u64| -> Vec<bool> {
            let mut c = ChaosConn::new(&plan, id);
            (0..200).map(|_| c.refuse_connect()).collect()
        };
        assert_eq!(seq(0), seq(0));
        assert!(seq(0).iter().any(|&r| r), "60‰ over 200 draws should hit");
        assert_ne!(seq(0), seq(1));
    }

    #[test]
    fn profile_grammar_parses_presets_and_clauses() {
        assert_eq!(ChaosProfile::parse("off").unwrap(), ChaosProfile::off());
        assert_eq!(ChaosProfile::parse("heavy").unwrap(), ChaosProfile::heavy());
        let p = ChaosProfile::parse("delay:100:3000,short:250,refuse:15").unwrap();
        assert_eq!(p.delay_per_mille, 100);
        assert_eq!(p.max_delay_us, 3000);
        assert_eq!(p.short_per_mille, 250);
        assert_eq!(p.refuse_per_mille, 15);
        assert_eq!(p.reset_per_mille, 0);
        assert_eq!(
            ChaosProfile::parse("delay:100").unwrap().max_delay_us,
            5_000
        );
        for bad in [
            "bogus:5",
            "delay",
            "reset:abc",
            "reset:1001",
            "short:5:9",
            "delay:1:2:3",
        ] {
            assert!(ChaosProfile::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn ops_never_cross_window_boundaries() {
        let plan = ChaosPlan::new(1, ChaosProfile::light());
        let mut c = ChaosConn::new(&plan, 0);
        let mut pos = 0u64;
        for _ in 0..200 {
            let p = c.plan(Dir::Write, 10_000);
            if p.fail {
                c.reconnected();
                continue;
            }
            let end = pos + p.allow as u64;
            assert!(
                end <= (pos / WINDOW + 1) * WINDOW,
                "op from {pos} ran to {end}, crossing a window edge"
            );
            c.advance(Dir::Write, p.allow);
            pos = end;
        }
    }
}

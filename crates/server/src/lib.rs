//! `xtree-server` — the serving layer: a long-running daemon that
//! embeds and simulates trees on request over a binary TCP protocol.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — the `XWIRE1` length-prefixed LEB128 frame codec and the
//!   typed [`Request`]/[`Response`] messages (versioned the same way the
//!   `XCKPT1` checkpoint container is);
//! * [`queue`] — the bounded MPMC job queue whose `try_push` failure *is*
//!   the backpressure signal (`Overloaded`, never a hang);
//! * [`chaos`] — the seeded chaos transport: a [`ChaosStream`] wrapper
//!   over `TcpStream` whose delays, short ops, corruption, resets, and
//!   refusals are a pure function of `(seed, connection id)`, so a fault
//!   schedule replays byte-deterministically;
//! * [`cache`] — the sharded-LRU embedding cache keyed on
//!   `(family, nodes, seed, theorem)`, sharing `Arc<XEmbedding>`s so a
//!   hit skips the Theorem-1 construction entirely;
//! * [`service`] — what a worker does with a request (validate → cache
//!   get-or-build → evaluate / simulate);
//! * [`metrics`] — request counters, latency/queue-depth histograms, and
//!   the shared engine-event sink, exported in the workspace's standard
//!   Prometheus and JSONL shapes;
//! * [`server`] — the daemon itself (acceptor + handler threads + worker
//!   pool + graceful drain);
//! * [`client`] — the blocking client the CLI, load generator, and tests
//!   all use, with reconnect-and-replay under a [`ReconnectPolicy`];
//! * [`cluster`] — the sharded tier: a consistent-hash [`Router`] over M
//!   daemons, a shared failure detector, in-flight replay on shard
//!   death, and a process [`Supervisor`] that restarts crashed shards.
//!
//! ```no_run
//! use xtree_server::{Client, Request, Response, Server, ServerConfig};
//!
//! let mut server = Server::spawn(&ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let resp = client
//!     .call(&Request::Embed { family: 0, nodes: 496, seed: 7, theorem: 1 })
//!     .unwrap();
//! assert!(matches!(resp, Response::EmbedOk { .. }));
//! client.call(&Request::Shutdown).unwrap();
//! server.wait();
//! ```

pub mod cache;
pub mod chaos;
pub mod client;
pub mod cluster;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod service;
pub mod wire;

pub use cache::{EmbeddingCache, EmbeddingKey};
pub use chaos::{ChaosConn, ChaosCounts, ChaosPlan, ChaosProfile, ChaosStream};
pub use client::{Client, ReconnectPolicy};
pub use cluster::{
    ClusterMetrics, FailureKind, HashRing, Router, RouterConfig, ShardSet, Supervisor,
};
pub use metrics::ServerMetrics;
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServerConfig};
pub use service::MAX_NODES;
pub use wire::{
    HealthInfo, Request, Response, WireError, WireReport, WireStats, ERR_BAD_REQUEST, ERR_DEADLINE,
    ERR_EXHAUSTED, ERR_SHUTTING_DOWN, ERR_UNREACHABLE, WORKLOAD_ALL,
};

//! A minimal blocking client: one connection, one request in flight.
//!
//! This is what the CLI `request` subcommand, the load generator, and the
//! integration tests all speak through — so client-side framing bugs
//! would show up everywhere at once.

use crate::wire::{read_frame, write_request, Request, Response, WireError};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. Requests are strictly serial per connection; open
/// several clients for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Any wire error, including [`WireError::Closed`] when the server
    /// hangs up without answering.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        write_request(&mut self.writer, req)?;
        match read_frame(&mut self.reader)? {
            Some(bytes) => crate::wire::decode_response(&bytes),
            None => Err(WireError::Closed),
        }
    }
}

//! A minimal blocking client: one connection, one request in flight.
//!
//! This is what the CLI `request` subcommand, the load generator, the
//! cluster router, and the integration tests all speak through — so
//! client-side framing bugs would show up everywhere at once.
//!
//! Transport failures come in two typed flavours ([`WireError::Refused`]
//! — nobody listening, e.g. mid-restart — and [`WireError::Reset`] — the
//! peer died under an established connection), and
//! [`Client::call_retrying`] closes the loop over both: because every
//! `Embed`/`Simulate`/`Stats`/`Health` request is a pure function of its
//! fields, a request the peer never answered can be re-sent verbatim
//! after reconnecting, under the same Fixed/Exponential [`Backoff`]
//! shapes the simulation's `RecoveryPolicy` uses (interpreted here as
//! milliseconds of wall clock instead of simulated cycles).

use crate::wire::{read_frame, write_request, Request, Response, WireError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use xtree_sim::Backoff;

/// How a client heals a broken connection: the client-side analogue of
/// the simulator's `RecoveryPolicy` (same retry-budget + backoff shape,
/// no repair step — reconnecting *is* the repair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Reconnect attempts after the initial failure (0 = fail fast).
    pub max_retries: u32,
    /// Wall-clock wait schedule between attempts, in milliseconds.
    pub backoff: Backoff,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_retries: 5,
            backoff: Backoff::Exponential { base: 25, cap: 400 },
        }
    }
}

impl ReconnectPolicy {
    /// A policy that never reconnects: `call_retrying` degenerates to
    /// `call`.
    pub fn none() -> Self {
        ReconnectPolicy {
            max_retries: 0,
            backoff: Backoff::Fixed(0),
        }
    }
}

/// A connected client. Requests are strictly serial per connection; open
/// several clients for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Where the connection points, kept for reconnects.
    peer: SocketAddr,
    /// Requests re-sent after a reconnect over this client's lifetime.
    replays: u64,
}

fn open(addr: SocketAddr) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let (reader, writer) = open(peer)?;
        Ok(Client {
            reader,
            writer,
            peer,
            replays: 0,
        })
    }

    /// The address this client (re)connects to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Requests re-sent after a reconnect so far — the client-side replay
    /// accounting `call_retrying` accumulates.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Any wire error, including [`WireError::Closed`] when the server
    /// hangs up without answering and the typed [`WireError::Refused`] /
    /// [`WireError::Reset`] transport classes.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        write_request(&mut self.writer, req)?;
        match read_frame(&mut self.reader)? {
            Some(bytes) => crate::wire::decode_response(&bytes),
            None => Err(WireError::Closed),
        }
    }

    /// Drops the broken connection and dials the peer again.
    ///
    /// # Errors
    /// The classified connect failure ([`WireError::Refused`] while the
    /// peer is still down).
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        let (reader, writer) = open(self.peer)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// [`Client::call`], but transport failures (refused / reset / closed
    /// / raw socket errors) trigger reconnect-and-resend under `policy`
    /// instead of failing the first request after a peer restart.
    /// Protocol-level errors (malformed frames, bad fields) are returned
    /// immediately — replaying them would fail identically.
    ///
    /// # Errors
    /// The last transport error once the retry budget is spent, or any
    /// non-transport wire error as soon as it occurs.
    pub fn call_retrying(
        &mut self,
        req: &Request,
        policy: &ReconnectPolicy,
    ) -> Result<Response, WireError> {
        let mut last = match self.call(req) {
            Ok(resp) => return Ok(resp),
            Err(e) if e.is_transport() => e,
            Err(e) => return Err(e),
        };
        for attempt in 0..policy.max_retries {
            std::thread::sleep(Duration::from_millis(u64::from(
                policy.backoff.delay(attempt),
            )));
            if let Err(e) = self.reconnect() {
                last = e;
                continue;
            }
            self.replays += 1;
            match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_transport() => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}

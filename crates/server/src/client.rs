//! A minimal blocking client: one connection, one request in flight.
//!
//! This is what the CLI `request` subcommand, the load generator, the
//! cluster router, and the integration tests all speak through — so
//! client-side framing bugs would show up everywhere at once.
//!
//! Transport failures come in three typed flavours ([`WireError::Refused`]
//! — nobody listening, e.g. mid-restart — [`WireError::Reset`] — the
//! peer died under an established connection — and
//! [`WireError::TimedOut`] — the peer holds the socket but outran its
//! budget), and [`Client::call_retrying`] closes the loop over them:
//! because every `Embed`/`Simulate`/`Stats`/`Health` request is a pure
//! function of its fields, a request the peer never answered can be
//! re-sent verbatim after reconnecting, under the same Fixed/Exponential
//! [`Backoff`] shapes the simulation's `RecoveryPolicy` uses (interpreted
//! here as milliseconds of wall clock instead of simulated cycles).
//!
//! The one exception is `Shutdown`, the protocol's only non-idempotent
//! request: once its frame was *fully written*, the peer may already be
//! draining, so a transport failure after the write is returned instead
//! of replayed — retrying could shut down a freshly restarted daemon.
//! Failures *before* the frame was on the wire (refused at connect, reset
//! mid-write) replay like everything else.
//!
//! Deadline budgets ride the same calls: [`Client::call_deadline`] sets
//! `SO_RCVTIMEO`/`SO_SNDTIMEO` from the remaining budget and stamps it
//! into the frame's trailing field, so the server, the router, and every
//! hop downstream inherit how much patience this client has left.

use crate::chaos::{ChaosConn, ChaosStream};
use crate::wire::{read_frame, write_request_host, Request, Response, WireError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xtree_sim::Backoff;

/// How a client heals a broken connection: the client-side analogue of
/// the simulator's `RecoveryPolicy` (same retry-budget + backoff shape,
/// no repair step — reconnecting *is* the repair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Reconnect attempts after the initial failure (0 = fail fast).
    pub max_retries: u32,
    /// Wall-clock wait schedule between attempts, in milliseconds.
    pub backoff: Backoff,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_retries: 5,
            backoff: Backoff::Exponential { base: 25, cap: 400 },
        }
    }
}

impl ReconnectPolicy {
    /// A policy that never reconnects: `call_retrying` degenerates to
    /// `call`.
    pub fn none() -> Self {
        ReconnectPolicy {
            max_retries: 0,
            backoff: Backoff::Fixed(0),
        }
    }
}

/// A connected client. Requests are strictly serial per connection; open
/// several clients for concurrency.
pub struct Client {
    reader: BufReader<ChaosStream>,
    writer: ChaosStream,
    /// Where the connection points, kept for reconnects.
    peer: SocketAddr,
    /// Requests re-sent after a reconnect over this client's lifetime.
    replays: u64,
    /// The seeded fault stream, when this client is a chaos participant.
    /// Kept across reconnects: positions persist, so a consumed fault
    /// never replays.
    chaos: Option<Arc<Mutex<ChaosConn>>>,
}

fn open(
    addr: SocketAddr,
    chaos: &Option<Arc<Mutex<ChaosConn>>>,
) -> std::io::Result<(BufReader<ChaosStream>, ChaosStream)> {
    if let Some(c) = chaos {
        if c.lock().expect("chaos poisoned").refuse_connect() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "chaos: injected connect refusal",
            ));
        }
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let stream = ChaosStream::wrap(stream, chaos.clone());
    let writer = stream.try_clone()?;
    if let Some(c) = chaos {
        c.lock().expect("chaos poisoned").reconnected();
    }
    Ok((BufReader::new(stream), writer))
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::connect_with_chaos(addr, None)
    }

    /// Connects with an optional seeded fault stream wrapped around the
    /// socket — the load generator and chaos bench use this to make the
    /// *client* side of every connection hostile, deterministically.
    ///
    /// # Errors
    /// Propagates the connect failure (which may itself be an injected
    /// refusal).
    pub fn connect_with_chaos<A: ToSocketAddrs>(
        addr: A,
        chaos: Option<Arc<Mutex<ChaosConn>>>,
    ) -> std::io::Result<Client> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let (reader, writer) = open(peer, &chaos)?;
        Ok(Client {
            reader,
            writer,
            peer,
            replays: 0,
            chaos,
        })
    }

    /// The address this client (re)connects to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Requests re-sent after a reconnect so far — the client-side replay
    /// accounting `call_retrying` accumulates.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Any wire error, including [`WireError::Closed`] when the server
    /// hangs up without answering and the typed [`WireError::Refused`] /
    /// [`WireError::Reset`] transport classes.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.call_deadline(req, None)
    }

    /// [`Client::call`] under a deadline budget: the socket's read and
    /// write timeouts are set from the remaining budget (so a wedged peer
    /// surfaces as [`WireError::TimedOut`] instead of hanging forever)
    /// and the remaining microseconds ride the frame's trailing field for
    /// the server and router to deduct from.
    ///
    /// # Errors
    /// [`WireError::TimedOut`] when the budget runs out, or any other
    /// wire error.
    pub fn call_deadline(
        &mut self,
        req: &Request,
        budget: Option<Duration>,
    ) -> Result<Response, WireError> {
        self.call_classified(req, budget.map(|b| Instant::now() + b), None)
            .map_err(|(e, _)| e)
    }

    /// [`Client::call_deadline`] with an explicit host-topology tag
    /// (`xtree_host::HOST_HYPERCUBE`, …) stamped into the frame's
    /// trailing host field. `None` sends the pre-host encoding byte for
    /// byte, and the server applies its own default.
    ///
    /// # Errors
    /// As [`Client::call_deadline`].
    pub fn call_host(
        &mut self,
        req: &Request,
        budget: Option<Duration>,
        host: Option<u8>,
    ) -> Result<Response, WireError> {
        self.call_classified(req, budget.map(|b| Instant::now() + b), host)
            .map_err(|(e, _)| e)
    }

    /// The call core: errors carry whether the request frame was fully
    /// written (`true` = the peer may have received and acted on it).
    fn call_classified(
        &mut self,
        req: &Request,
        deadline: Option<Instant>,
        host: Option<u8>,
    ) -> Result<Response, (WireError, bool)> {
        let budget_us = match deadline {
            None => None,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err((WireError::TimedOut, false));
                }
                // SO_* timeouts reject zero; the 1 ms floor only pads a
                // budget that is already effectively spent.
                let t = Some(remaining.max(Duration::from_millis(1)));
                self.writer.set_read_timeout(t).ok();
                self.writer.set_write_timeout(t).ok();
                Some(remaining.as_micros() as u64)
            }
        };
        let sent = write_request_host(&mut self.writer, req, budget_us, host);
        let res = match sent {
            Err(e) => Err((e, false)),
            Ok(()) => match read_frame(&mut self.reader) {
                Ok(Some(bytes)) => crate::wire::decode_response(&bytes).map_err(|e| (e, true)),
                Ok(None) => Err((WireError::Closed, true)),
                Err(e) => Err((e, true)),
            },
        };
        if deadline.is_some() {
            // Budget-free calls on this connection go back to blocking.
            self.writer.set_read_timeout(None).ok();
            self.writer.set_write_timeout(None).ok();
        }
        res
    }

    /// Drops the broken connection and dials the peer again.
    ///
    /// # Errors
    /// The classified connect failure ([`WireError::Refused`] while the
    /// peer is still down).
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        let (reader, writer) = open(self.peer, &self.chaos)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// [`Client::call`], but transport failures (refused / reset / timed
    /// out / closed / raw socket errors) trigger reconnect-and-resend
    /// under `policy` instead of failing the first request after a peer
    /// restart. Protocol-level errors (malformed frames, bad fields) are
    /// returned immediately — replaying them would fail identically — and
    /// a `Shutdown` whose frame was fully written is never replayed (see
    /// the module docs).
    ///
    /// # Errors
    /// The last transport error once the retry budget is spent, or any
    /// non-transport wire error as soon as it occurs.
    pub fn call_retrying(
        &mut self,
        req: &Request,
        policy: &ReconnectPolicy,
    ) -> Result<Response, WireError> {
        self.call_retrying_deadline(req, policy, None)
    }

    /// [`Client::call_retrying`] under a deadline budget shared by *all*
    /// attempts: backoff sleeps are clamped to the remaining budget, a
    /// spent budget fails with [`WireError::TimedOut`] instead of
    /// starting another attempt, and each attempt's frame carries the
    /// budget left at that moment.
    ///
    /// # Errors
    /// [`WireError::TimedOut`] when the budget ran out, the last
    /// transport error once the retry budget is spent, or any
    /// non-transport wire error as soon as it occurs.
    pub fn call_retrying_deadline(
        &mut self,
        req: &Request,
        policy: &ReconnectPolicy,
        budget: Option<Duration>,
    ) -> Result<Response, WireError> {
        self.call_retrying_deadline_host(req, policy, budget, None)
    }

    /// [`Client::call_retrying_deadline`] with an explicit host-topology
    /// tag riding every attempt's frame (replays re-send it verbatim —
    /// the request stays a pure function of its fields plus the tag).
    ///
    /// # Errors
    /// As [`Client::call_retrying_deadline`].
    pub fn call_retrying_deadline_host(
        &mut self,
        req: &Request,
        policy: &ReconnectPolicy,
        budget: Option<Duration>,
        host: Option<u8>,
    ) -> Result<Response, WireError> {
        let deadline = budget.map(|b| Instant::now() + b);
        // In-flight Shutdown is the one non-idempotent request: once the
        // frame was written, the peer may be draining — don't resend.
        let retryable = |sent: bool| !(sent && matches!(req, Request::Shutdown));
        let mut last = match self.call_classified(req, deadline, host) {
            Ok(resp) => return Ok(resp),
            Err((e, sent)) if e.is_transport() && retryable(sent) => e,
            Err((e, _)) => return Err(e),
        };
        for attempt in 0..policy.max_retries {
            let mut wait = Duration::from_millis(u64::from(policy.backoff.delay(attempt)));
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(WireError::TimedOut);
                }
                wait = wait.min(remaining);
            }
            std::thread::sleep(wait);
            if let Err(e) = self.reconnect() {
                last = e;
                continue;
            }
            self.replays += 1;
            match self.call_classified(req, deadline, host) {
                Ok(resp) => return Ok(resp),
                Err((e, sent)) if e.is_transport() && retryable(sent) => last = e,
                Err((e, _)) => return Err(e),
            }
        }
        Err(last)
    }
}

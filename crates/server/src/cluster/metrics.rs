//! Router-side observability: who got routed where, what failed, what
//! was replayed, and how long failovers cost.
//!
//! Per-shard counters are plain `Vec<AtomicU64>` indexed by shard id
//! (the roster is fixed at spawn, so no locking). The failover histogram
//! records end-to-end latency *only* for requests that needed at least
//! one replay — the tail the kill-a-shard bench probe reads back.
//! Exports reuse the telemetry crate's exposition helpers with a
//! `shard="i"` label, so `xtree_cluster_*` series sit next to the
//! established `xtree_server_*` ones in the same scrape.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use xtree_json::Value;
use xtree_telemetry::{histogram_jsonl, histogram_prometheus, Histogram};

/// Failover-latency buckets: pow-2 microseconds up to ~134 s.
const FAILOVER_BUCKETS: u32 = 28;

/// All metrics one router accumulates over its lifetime.
pub struct ClusterMetrics {
    /// Forward attempts dispatched to each shard.
    routed: Vec<AtomicU64>,
    /// Transport failures observed talking to each shard.
    failed: Vec<AtomicU64>,
    /// The subset of failures that were socket deadlines (the shard held
    /// the connection but outran the budget) rather than disconnects.
    timeouts: Vec<AtomicU64>,
    /// Re-dispatches after a failure, by the shard that *received* the
    /// replay.
    replayed: Vec<AtomicU64>,
    /// Requests failed with `Unreachable` (no live shard at any attempt).
    unreachable: AtomicU64,
    /// Requests failed with `Exhausted` (replay budget spent).
    exhausted: AtomicU64,
    /// Requests rejected with `ERR_DEADLINE` (client budget spent before
    /// a shard answered).
    deadline_rejects: AtomicU64,
    /// Shard processes the supervisor restarted.
    restarts: AtomicU64,
    /// Hot keys replayed into freshly restarted shards (cache warmup).
    warmup_keys: AtomicU64,
    /// Client requests accepted by the router, of any type.
    requests: AtomicU64,
    /// End-to-end latency of requests that needed ≥ 1 replay.
    failover_us: Mutex<Histogram>,
}

impl ClusterMetrics {
    /// Fresh, zeroed metrics for a roster of `shards` shards.
    pub fn new(shards: usize) -> Self {
        ClusterMetrics {
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            failed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            timeouts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            replayed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            unreachable: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            deadline_rejects: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            warmup_keys: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            failover_us: Mutex::new(Histogram::pow2(FAILOVER_BUCKETS)),
        }
    }

    /// Counts one client request of any type.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Relaxed);
    }

    /// Counts one forward attempt dispatched to `shard`.
    pub fn count_routed(&self, shard: u16) {
        self.routed[usize::from(shard)].fetch_add(1, Relaxed);
    }

    /// Counts one transport failure observed talking to `shard`.
    pub fn count_failed(&self, shard: u16) {
        self.failed[usize::from(shard)].fetch_add(1, Relaxed);
    }

    /// Counts one socket-deadline expiry talking to `shard` (also counted
    /// as a failure by the caller).
    pub fn count_timeout(&self, shard: u16) {
        self.timeouts[usize::from(shard)].fetch_add(1, Relaxed);
    }

    /// Counts one replay re-dispatched to `shard` after a failure
    /// elsewhere (or a reconnect to the same shard).
    pub fn count_replayed(&self, shard: u16) {
        self.replayed[usize::from(shard)].fetch_add(1, Relaxed);
    }

    /// Counts one request abandoned because no shard was live.
    pub fn count_unreachable(&self) {
        self.unreachable.fetch_add(1, Relaxed);
    }

    /// Counts one request abandoned with the replay budget spent.
    pub fn count_exhausted(&self) {
        self.exhausted.fetch_add(1, Relaxed);
    }

    /// Counts one request rejected because its deadline budget expired
    /// before any shard answered.
    pub fn count_deadline_reject(&self) {
        self.deadline_rejects.fetch_add(1, Relaxed);
    }

    /// Counts one supervisor restart of a crashed shard.
    pub fn count_restart(&self) {
        self.restarts.fetch_add(1, Relaxed);
    }

    /// Counts `n` hot keys replayed into a freshly restarted shard.
    pub fn count_warmup_keys(&self, n: u64) {
        self.warmup_keys.fetch_add(n, Relaxed);
    }

    /// Records the end-to-end latency of a request that needed at least
    /// one replay.
    pub fn observe_failover_us(&self, us: u64) {
        self.failover_us
            .lock()
            .expect("failover poisoned")
            .observe(us);
    }

    /// Total forward attempts across all shards.
    pub fn routed_total(&self) -> u64 {
        self.routed.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Total transport failures across all shards.
    pub fn failed_total(&self) -> u64 {
        self.failed.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Total socket-deadline expiries across all shards.
    pub fn timeouts_total(&self) -> u64 {
        self.timeouts.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Total replays across all shards.
    pub fn replayed_total(&self) -> u64 {
        self.replayed.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Requests abandoned as `Unreachable`.
    pub fn unreachable_total(&self) -> u64 {
        self.unreachable.load(Relaxed)
    }

    /// Requests abandoned as `Exhausted`.
    pub fn exhausted_total(&self) -> u64 {
        self.exhausted.load(Relaxed)
    }

    /// Requests rejected with an expired deadline budget.
    pub fn deadline_rejects_total(&self) -> u64 {
        self.deadline_rejects.load(Relaxed)
    }

    /// Shard restarts the supervisor performed.
    pub fn restarts_total(&self) -> u64 {
        self.restarts.load(Relaxed)
    }

    /// Hot keys replayed into restarted shards.
    pub fn warmup_keys_total(&self) -> u64 {
        self.warmup_keys.load(Relaxed)
    }

    /// Client requests accepted.
    pub fn requests_total(&self) -> u64 {
        self.requests.load(Relaxed)
    }

    /// A quantile (upper bucket bound, microseconds) of the
    /// failover-latency histogram, and how many failovers it summarises.
    pub fn failover_quantile_us(&self, q: f64) -> (u64, u64) {
        let h = self.failover_us.lock().expect("failover poisoned");
        (h.quantile(q), h.count())
    }

    /// Prometheus text exposition: per-shard labelled counters, the
    /// cluster-level outcome counters, and the failover-latency
    /// histogram.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, per_shard) in [
            ("routed", &self.routed),
            ("failed", &self.failed),
            ("timeouts", &self.timeouts),
            ("replayed", &self.replayed),
        ] {
            out.push_str(&format!("# TYPE xtree_cluster_{name}_total counter\n"));
            for (shard, c) in per_shard.iter().enumerate() {
                out.push_str(&format!(
                    "xtree_cluster_{name}_total{{shard=\"{shard}\"}} {}\n",
                    c.load(Relaxed)
                ));
            }
        }
        for (name, v) in [
            ("requests", self.requests.load(Relaxed)),
            ("unreachable", self.unreachable.load(Relaxed)),
            ("exhausted", self.exhausted.load(Relaxed)),
            ("deadline_rejects", self.deadline_rejects.load(Relaxed)),
            ("restarts", self.restarts.load(Relaxed)),
            ("warmup_keys", self.warmup_keys.load(Relaxed)),
        ] {
            out.push_str(&format!(
                "# TYPE xtree_cluster_{name}_total counter\nxtree_cluster_{name}_total {v}\n"
            ));
        }
        histogram_prometheus(
            &mut out,
            "xtree_cluster_failover_latency_us",
            &self.failover_us.lock().expect("failover poisoned"),
        );
        out
    }

    /// JSONL export: one counters object (per-shard arrays), then the
    /// failover histogram in the workspace's standard record shape.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let loads = |v: &[AtomicU64]| v.iter().map(|c| c.load(Relaxed)).collect::<Value>();
        let counters = Value::object()
            .with("type", "cluster_counters")
            .with("requests", self.requests.load(Relaxed))
            .with("routed", loads(&self.routed))
            .with("failed", loads(&self.failed))
            .with("timeouts", loads(&self.timeouts))
            .with("replayed", loads(&self.replayed))
            .with("unreachable", self.unreachable.load(Relaxed))
            .with("exhausted", self.exhausted.load(Relaxed))
            .with("deadline_rejects", self.deadline_rejects.load(Relaxed))
            .with("restarts", self.restarts.load(Relaxed))
            .with("warmup_keys", self.warmup_keys.load(Relaxed));
        out.push_str(&xtree_json::to_string(&counters));
        out.push('\n');
        let h = self.failover_us.lock().expect("failover poisoned");
        out.push_str(&xtree_json::to_string(&histogram_jsonl(
            "failover_latency_us",
            &h,
        )));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_render_per_shard_series() {
        let m = ClusterMetrics::new(2);
        m.count_request();
        m.count_routed(0);
        m.count_routed(1);
        m.count_routed(1);
        m.count_failed(1);
        m.count_timeout(1);
        m.count_replayed(0);
        m.count_restart();
        m.count_deadline_reject();
        m.count_warmup_keys(3);
        m.observe_failover_us(1500);
        assert_eq!(m.routed_total(), 3);
        assert_eq!(m.failed_total(), 1);
        assert_eq!(m.timeouts_total(), 1);
        assert_eq!(m.replayed_total(), 1);
        assert_eq!(m.deadline_rejects_total(), 1);
        assert_eq!(m.warmup_keys_total(), 3);
        let prom = m.to_prometheus();
        assert!(
            prom.contains("xtree_cluster_routed_total{shard=\"1\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("xtree_cluster_timeouts_total{shard=\"1\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("xtree_cluster_restarts_total 1"), "{prom}");
        assert!(prom.contains("xtree_cluster_warmup_keys_total 3"), "{prom}");
        assert!(
            prom.contains("# TYPE xtree_cluster_failover_latency_us histogram"),
            "{prom}"
        );
        let jsonl = m.to_jsonl();
        for line in jsonl.lines() {
            assert!(xtree_json::from_str(line).is_ok(), "bad JSONL: {line}");
        }
        assert!(jsonl.contains("\"replayed\":[1,0]"), "{jsonl}");
        assert!(jsonl.contains("\"timeouts\":[0,1]"), "{jsonl}");
        assert!(jsonl.contains("\"deadline_rejects\":1"), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"failover_latency_us\""));
    }
}

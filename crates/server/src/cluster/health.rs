//! Shard liveness: the failure detector the router and supervisor share.
//!
//! [`ShardSet`] is the single source of truth about where each shard
//! lives and whether it is believed alive. Two evidence streams feed it:
//! the [`HealthMonitor`] thread, which probes every shard with a `Health`
//! request on a fixed interval, and the router's own request handlers,
//! which report transport failures they observe while forwarding. Both
//! feed the same weighted strike counter, so a shard that dies under
//! load is ejected no matter which path noticed first — and a single
//! successful probe (or forward) readmits it and zeroes the streak.
//!
//! Strikes are weighted by [`FailureKind`]: a *disconnect* (refused,
//! reset, closed — the peer is provably not serving this socket) scores
//! double a *timeout* (the peer holds the connection but answered late —
//! possibly just overloaded). Ejection triggers at `2 × fail_after`
//! strike points, so `fail_after` consecutive disconnects keep their
//! historical meaning while pure timeouts need twice the evidence; a
//! slow-but-alive shard degrades, it does not flap.
//!
//! Ejection never mutates the hash ring; the router filters dead shards
//! at lookup time, which `ring.rs` shows is equivalent. That keeps the
//! failure path lock-free: liveness is one `AtomicBool` load per lookup.
//!
//! Addresses are mutable because the supervisor restarts crashed shard
//! processes on *new* ephemeral ports. Every address change bumps a
//! per-shard generation counter; handlers that cache connections compare
//! generations and re-dial instead of talking to a dead socket.

use crate::wire::{read_frame, write_request, HealthInfo, Request, Response, WireError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How a shard failed, for strike weighting and per-kind accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The peer answered too slowly (socket deadline elapsed). Weakest
    /// evidence of death: an overloaded shard looks exactly like this.
    Timeout,
    /// The peer refused, reset, or closed the connection — it is provably
    /// not serving on this socket.
    Disconnect,
}

impl FailureKind {
    /// Classifies a wire error: expired socket budgets are timeouts,
    /// everything else (refused, reset, closed, protocol damage) counts
    /// as a disconnect.
    pub fn from_error(e: &WireError) -> FailureKind {
        match e {
            WireError::TimedOut => FailureKind::Timeout,
            _ => FailureKind::Disconnect,
        }
    }

    /// Strike points this failure adds to the shard's streak.
    fn weight(self) -> u32 {
        match self {
            FailureKind::Timeout => 1,
            FailureKind::Disconnect => 2,
        }
    }
}

struct ShardSlot {
    addr: Mutex<SocketAddr>,
    /// Bumped on every address change; invalidates cached connections.
    generation: AtomicU64,
    alive: AtomicBool,
    /// Weighted strike points since the last success.
    fails: AtomicU32,
    /// Times this shard has been ejected.
    deaths: AtomicU64,
    /// Lifetime timeout-class failures (for the metrics exports).
    timeouts: AtomicU64,
    /// Lifetime disconnect-class failures.
    disconnects: AtomicU64,
    /// The last `Health` payload the prober saw (load signal).
    last_info: Mutex<Option<HealthInfo>>,
}

/// The cluster's shard roster: addresses, liveness, failure streaks.
pub struct ShardSet {
    slots: Vec<ShardSlot>,
    /// Consecutive failures that eject a shard.
    fail_after: u32,
}

impl ShardSet {
    /// A roster of `addrs.len()` shards, all initially alive. `fail_after`
    /// is clamped to ≥ 1.
    pub fn new(addrs: &[SocketAddr], fail_after: u32) -> Arc<ShardSet> {
        Arc::new(ShardSet {
            slots: addrs
                .iter()
                .map(|&addr| ShardSlot {
                    addr: Mutex::new(addr),
                    generation: AtomicU64::new(0),
                    alive: AtomicBool::new(true),
                    fails: AtomicU32::new(0),
                    deaths: AtomicU64::new(0),
                    timeouts: AtomicU64::new(0),
                    disconnects: AtomicU64::new(0),
                    last_info: Mutex::new(None),
                })
                .collect(),
            fail_after: fail_after.max(1),
        })
    }

    /// Number of shards in the roster (fixed for the cluster's lifetime).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the roster is empty (never, for a spawned router).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current address of shard `id`.
    pub fn addr(&self, id: u16) -> SocketAddr {
        *self.slots[usize::from(id)].addr.lock().expect("addr lock")
    }

    /// Points shard `id` at a freshly restarted process and readmits it:
    /// the supervisor only calls this after the child printed its
    /// readiness line, so the listener is provably up.
    pub fn set_addr(&self, id: u16, addr: SocketAddr) {
        let slot = &self.slots[usize::from(id)];
        *slot.addr.lock().expect("addr lock") = addr;
        slot.generation.fetch_add(1, Relaxed);
        slot.fails.store(0, Relaxed);
        if !slot.alive.swap(true, Relaxed) {
            eprintln!("xtree-cluster: shard {id} readmitted at {addr}");
        }
    }

    /// Connection-cache epoch for shard `id`.
    pub fn generation(&self, id: u16) -> u64 {
        self.slots[usize::from(id)].generation.load(Relaxed)
    }

    /// Is shard `id` currently believed alive?
    pub fn is_alive(&self, id: u16) -> bool {
        self.slots[usize::from(id)].alive.load(Relaxed)
    }

    /// Shards currently believed alive.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.alive.load(Relaxed)).count()
    }

    /// Total ejections across all shards so far.
    pub fn deaths(&self) -> u64 {
        self.slots.iter().map(|s| s.deaths.load(Relaxed)).sum()
    }

    /// Records a successful probe or forward: zeroes the failure streak
    /// and readmits the shard if it was ejected.
    pub fn report_success(&self, id: u16, info: Option<HealthInfo>) {
        let slot = &self.slots[usize::from(id)];
        slot.fails.store(0, Relaxed);
        if info.is_some() {
            *slot.last_info.lock().expect("info lock") = info;
        }
        if !slot.alive.swap(true, Relaxed) {
            eprintln!("xtree-cluster: shard {id} readmitted at {}", self.addr(id));
        }
    }

    /// Records a disconnect-class failure (the historical behavior:
    /// `fail_after` consecutive calls eject). Returns `true` when this
    /// failure ejected the shard.
    pub fn report_failure(&self, id: u16) -> bool {
        self.report_failure_kind(id, FailureKind::Disconnect)
    }

    /// Records a failed probe or forward of the given kind. Disconnects
    /// add two strike points, timeouts one; the shard is ejected when the
    /// streak reaches `2 × fail_after` points. Returns `true` when this
    /// failure ejected the shard.
    pub fn report_failure_kind(&self, id: u16, kind: FailureKind) -> bool {
        let slot = &self.slots[usize::from(id)];
        match kind {
            FailureKind::Timeout => slot.timeouts.fetch_add(1, Relaxed),
            FailureKind::Disconnect => slot.disconnects.fetch_add(1, Relaxed),
        };
        let streak = slot.fails.fetch_add(kind.weight(), Relaxed) + kind.weight();
        if streak >= 2 * self.fail_after && slot.alive.swap(false, Relaxed) {
            slot.deaths.fetch_add(1, Relaxed);
            eprintln!(
                "xtree-cluster: shard {id} marked dead at {streak} strike points ({kind:?} last)"
            );
            return true;
        }
        false
    }

    /// Lifetime timeout-class failures recorded against shard `id`.
    pub fn timeouts(&self, id: u16) -> u64 {
        self.slots[usize::from(id)].timeouts.load(Relaxed)
    }

    /// Lifetime disconnect-class failures recorded against shard `id`.
    pub fn disconnects(&self, id: u16) -> u64 {
        self.slots[usize::from(id)].disconnects.load(Relaxed)
    }

    /// The most recent `Health` load signal the prober stored for `id`.
    pub fn last_info(&self, id: u16) -> Option<HealthInfo> {
        *self.slots[usize::from(id)]
            .last_info
            .lock()
            .expect("info lock")
    }
}

/// One `Health` round trip with hard timeouts on every socket operation
/// (a probe must never hang the monitor on a wedged shard).
///
/// # Errors
/// The classified transport or protocol failure.
pub fn probe(addr: SocketAddr, timeout: Duration) -> Result<Option<HealthInfo>, WireError> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    write_request(&mut writer, &Request::Health)?;
    match read_frame(&mut reader)? {
        Some(bytes) => match crate::wire::decode_response(&bytes)? {
            Response::HealthOk { info } => Ok(info),
            // Any well-formed response proves the shard is up and
            // serving; only the load signal is missing.
            _ => Ok(None),
        },
        None => Err(WireError::Closed),
    }
}

/// The background prober: walks the roster every `interval`, feeding
/// successes and failures into the shared [`ShardSet`].
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Starts probing `shards` every `interval`. Each probe's socket
    /// timeout is the interval clamped to `[25ms, 500ms]` so one dead
    /// shard cannot starve probes of the others for long.
    pub fn spawn(shards: Arc<ShardSet>, interval: Duration) -> HealthMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let timeout = interval
            .max(Duration::from_millis(25))
            .min(Duration::from_millis(500));
        let handle = thread::Builder::new()
            .name("xtree-cluster-health".into())
            .spawn(move || {
                while !stop2.load(Relaxed) {
                    for id in 0..shards.len() as u16 {
                        match probe(shards.addr(id), timeout) {
                            Ok(info) => shards.report_success(id, info),
                            Err(e) => {
                                shards.report_failure_kind(id, FailureKind::from_error(&e));
                            }
                        }
                    }
                    thread::sleep(interval);
                }
            })
            .expect("spawn health monitor");
        HealthMonitor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the prober and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port)
    }

    #[test]
    fn ejects_after_k_consecutive_failures_and_readmits_on_success() {
        let set = ShardSet::new(&[addr(1), addr(2)], 3);
        assert!(!set.report_failure(0));
        assert!(!set.report_failure(0));
        assert!(set.is_alive(0), "below threshold stays alive");
        assert!(set.report_failure(0), "third consecutive failure ejects");
        assert!(!set.is_alive(0));
        assert_eq!(set.live_count(), 1);
        assert!(!set.report_failure(0), "already dead: no second ejection");
        set.report_success(0, None);
        assert!(set.is_alive(0));
        assert_eq!(set.deaths(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let set = ShardSet::new(&[addr(1)], 2);
        assert!(!set.report_failure(0));
        set.report_success(0, None);
        assert!(!set.report_failure(0), "streak was reset by the success");
        assert!(set.is_alive(0));
    }

    #[test]
    fn timeouts_strike_at_half_the_weight_of_disconnects() {
        let set = ShardSet::new(&[addr(1)], 2);
        // 2 × fail_after = 4 points: three timeouts (3 points) keep the
        // shard alive where two disconnects (4 points) would not.
        assert!(!set.report_failure_kind(0, FailureKind::Timeout));
        assert!(!set.report_failure_kind(0, FailureKind::Timeout));
        assert!(!set.report_failure_kind(0, FailureKind::Timeout));
        assert!(set.is_alive(0), "three timeouts are not enough evidence");
        assert!(set.report_failure_kind(0, FailureKind::Timeout));
        assert!(!set.is_alive(0));
        set.report_success(0, None);
        // Mixed evidence: a timeout plus a disconnect is 3 points, one
        // more disconnect crosses 4.
        assert!(!set.report_failure_kind(0, FailureKind::Timeout));
        assert!(!set.report_failure_kind(0, FailureKind::Disconnect));
        assert!(set.is_alive(0));
        assert!(set.report_failure_kind(0, FailureKind::Disconnect));
        assert_eq!(set.timeouts(0), 5);
        assert_eq!(set.disconnects(0), 2);
    }

    #[test]
    fn wire_errors_classify_into_failure_kinds() {
        assert_eq!(
            FailureKind::from_error(&WireError::TimedOut),
            FailureKind::Timeout
        );
        for e in [WireError::Refused, WireError::Reset, WireError::Closed] {
            assert_eq!(FailureKind::from_error(&e), FailureKind::Disconnect);
        }
    }

    #[test]
    fn set_addr_bumps_generation_and_readmits() {
        let set = ShardSet::new(&[addr(1)], 1);
        set.report_failure(0);
        assert!(!set.is_alive(0));
        let g = set.generation(0);
        set.set_addr(0, addr(9));
        assert!(set.is_alive(0));
        assert_eq!(set.addr(0), addr(9));
        assert_eq!(set.generation(0), g + 1);
    }
}

//! The cluster front door: one XWIRE1 listener that owns no compute.
//!
//! A router handler decodes each client request just far enough to learn
//! its routing key — the embedding-cache key `(family, nodes, seed,
//! theorem)` — hashes it onto the [`HashRing`], and forwards the
//! re-encoded frame to the owning shard, relaying the shard's response
//! payload back verbatim. Keeping the routing key equal to the cache key
//! means every shard's LRU only ever sees its own slice of the key
//! space: the cluster's aggregate cache is partitioned, not replicated.
//!
//! Failover is *replay*, and replay is safe by construction: `Embed` and
//! `Simulate` are pure functions of their request fields (the daemon
//! computes the same bytes for the same request, cache hit or not), so a
//! request whose shard died mid-flight can be re-sent — to the same
//! shard after reconnecting, or to the next live shard clockwise once
//! the failure detector ejects the dead one — without any risk of
//! double-applied effects. The only observable difference is the
//! response's `cached` convenience flag, which reports *which shard's*
//! cache answered; the integration tests normalise it before comparing
//! bytes. Budget and pacing reuse the client's [`ReconnectPolicy`]
//! (`max_retries` + Fixed/Exponential [`xtree_sim::Backoff`] in milliseconds — the
//! simulator's `RecoveryPolicy` shape). When every attempt found no live
//! shard the client gets `ERR_UNREACHABLE`; when the budget dies on live
//! shards it gets `ERR_EXHAUSTED`.
//!
//! Control requests never cross the ring: `Health` answers with the
//! router's own load signal, `Stats` aggregates a snapshot from every
//! live shard, and `Shutdown` drains the whole cluster — stop the
//! prober, tell the supervisor the coming exits are intentional, forward
//! `Shutdown` to every shard, then let `wait()` reap.
//!
//! Two robustness layers ride the forward path. *Deadline budgets*: a
//! client's remaining budget arrives in the frame's trailing field; the
//! router deducts elapsed time (including backoff sleeps) before every
//! attempt, re-encodes the shrunken budget for the shard, bounds each
//! attempt's socket I/O by it, and answers `ERR_DEADLINE` the moment the
//! budget dies — so a replay storm can never out-spend the client's
//! patience. *Cache warmup*: the router keeps a census of hot routing
//! keys, and when the supervisor restarts a crashed shard it replays
//! that shard's share of the hottest keys into the fresh cache before
//! client traffic lands on it.

use super::health::{FailureKind, HealthMonitor, ShardSet};
use super::metrics::ClusterMetrics;
use super::ring::HashRing;
use super::supervisor::Supervisor;
use crate::cache::EmbeddingKey;
use crate::client::ReconnectPolicy;
use crate::service::deadline_reject;
use crate::wire::{
    decode_request_host, decode_response, encode_request_host, frame, read_frame, write_request,
    write_request_host, write_response, HealthInfo, Request, Response, WireError, WireStats,
    ERR_BAD_REQUEST, ERR_EXHAUSTED, ERR_SHUTTING_DOWN, ERR_UNREACHABLE,
};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xtree_host::HOST_XTREE;

/// How a router is shaped: where it listens, who its shards are, and how
/// it detects and rides over their failures.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Shard daemon addresses; index = shard id on the ring.
    pub shards: Vec<SocketAddr>,
    /// Seed for the consistent-hash ring (placement is a pure function
    /// of this and the roster).
    pub ring_seed: u64,
    /// Virtual nodes per shard.
    pub vnodes: u32,
    /// Health-probe period.
    pub probe_interval: Duration,
    /// Consecutive disconnect-weight failures (probe or forward) that
    /// eject a shard; timeouts strike at half this weight.
    pub fail_after: u32,
    /// Replay budget and pacing for failed forwards.
    pub replay: ReconnectPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            ring_seed: 1991,
            vnodes: HashRing::DEFAULT_VNODES,
            probe_interval: Duration::from_millis(100),
            fail_after: 3,
            replay: ReconnectPolicy {
                max_retries: 8,
                backoff: xtree_sim::Backoff::Exponential { base: 25, cap: 800 },
            },
        }
    }
}

/// Dialing a shard that stops answering its accept queue must not hang a
/// client forever.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Per-attempt ceiling on shard I/O when the client supplied a deadline
/// budget; without one the forward path stays blocking, as before.
const FORWARD_TIMEOUT: Duration = Duration::from_secs(10);

/// `Stats` aggregation must answer even when one shard wedges.
const STATS_TIMEOUT: Duration = Duration::from_secs(2);

/// I/O ceiling while warming a restarted shard's cache.
const WARMUP_TIMEOUT: Duration = Duration::from_secs(2);

/// Hot-key census capacity; crossing it evicts the coldest half.
const HOT_KEYS_CAP: usize = 1024;

/// Hot keys considered when warming one restarted shard.
const WARMUP_TOP_K: usize = 8;

/// The router's sliding census of hot routing keys: what the cluster has
/// actually been asked for, used to pre-fill the cache of a freshly
/// restarted shard.
#[derive(Default)]
struct HotKeys {
    counts: HashMap<EmbeddingKey, u64>,
}

/// A total order on keys so hot-key ranking (and therefore warmup
/// traffic) is deterministic under equal counts.
fn key_rank(k: &EmbeddingKey) -> (u8, u64, u64, u8, u8) {
    (k.family, k.nodes, k.seed, k.theorem, k.host)
}

impl HotKeys {
    fn touch(&mut self, key: EmbeddingKey) {
        *self.counts.entry(key).or_insert(0) += 1;
        if self.counts.len() > HOT_KEYS_CAP {
            let mut by_heat: Vec<(EmbeddingKey, u64)> = self.counts.drain().collect();
            by_heat.sort_unstable_by(|a, b| {
                b.1.cmp(&a.1)
                    .then_with(|| key_rank(&a.0).cmp(&key_rank(&b.0)))
            });
            by_heat.truncate(HOT_KEYS_CAP / 2);
            self.counts = by_heat.into_iter().collect();
        }
    }

    /// The `k` hottest keys, hottest first.
    fn top(&self, k: usize) -> Vec<EmbeddingKey> {
        let mut by_heat: Vec<(&EmbeddingKey, &u64)> = self.counts.iter().collect();
        by_heat
            .sort_unstable_by(|a, b| b.1.cmp(a.1).then_with(|| key_rank(a.0).cmp(&key_rank(b.0))));
        by_heat.into_iter().take(k).map(|(key, _)| *key).collect()
    }
}

struct RouterShared {
    ring: HashRing,
    shards: Arc<ShardSet>,
    metrics: Arc<ClusterMetrics>,
    replay: ReconnectPolicy,
    shutdown: AtomicBool,
    started: Instant,
    /// Present when the shards are child processes the router owns.
    supervisor: Mutex<Option<Supervisor>>,
    /// Hot routing keys for restart cache warmup.
    hot: Mutex<HotKeys>,
}

/// A running router. Send it a wire `Shutdown` (or call
/// [`Router::shutdown`]) and then [`Router::wait`].
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    monitor: HealthMonitor,
    acceptor: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `config.addr`, builds the ring over `config.shards`, and
    /// starts the acceptor and health monitor.
    ///
    /// # Errors
    /// The bind failure, or `InvalidInput` for an empty shard roster.
    pub fn spawn(config: &RouterConfig) -> std::io::Result<Router> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shards = ShardSet::new(&config.shards, config.fail_after);
        let shared = Arc::new(RouterShared {
            ring: HashRing::with_shards(
                config.ring_seed,
                config.vnodes,
                config.shards.len() as u16,
            ),
            shards: Arc::clone(&shards),
            metrics: Arc::new(ClusterMetrics::new(config.shards.len())),
            replay: config.replay,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            supervisor: Mutex::new(None),
            hot: Mutex::new(HotKeys::default()),
        });
        let monitor = HealthMonitor::spawn(shards, config.probe_interval);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xtree-cluster-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .expect("spawn cluster acceptor")
        };
        Ok(Router {
            local_addr,
            shared,
            monitor,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared shard roster (liveness, addresses) — what a supervisor
    /// pushes restarted addresses into.
    pub fn shard_set(&self) -> Arc<ShardSet> {
        Arc::clone(&self.shared.shards)
    }

    /// The shared cluster metrics — what a supervisor counts restarts
    /// into.
    pub fn metrics(&self) -> Arc<ClusterMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Hands the router the supervisor owning the shard processes, so a
    /// wire `Shutdown` can drain them too.
    pub fn attach_supervisor(&self, sup: Supervisor) {
        *self.shared.supervisor.lock().expect("supervisor lock") = Some(sup);
    }

    /// The cache-warmup callback a supervisor should run after restarting
    /// a shard: replays that shard's share of the router's hottest keys
    /// into its fresh, empty cache (best effort, bounded I/O).
    pub fn warmup_fn(&self) -> super::supervisor::WarmupFn {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |id| warm_shard(&shared, id))
    }

    /// Initiates the same cluster-wide drain a wire `Shutdown` does.
    pub fn shutdown(&self) {
        begin_cluster_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the acceptor has exited, then stops the prober and
    /// reaps any supervised shard processes. Idempotent; metrics remain
    /// readable afterwards.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.monitor.stop();
        if let Some(mut sup) = self
            .shared
            .supervisor
            .lock()
            .expect("supervisor lock")
            .take()
        {
            sup.wait();
        }
    }

    /// Prometheus exposition of the cluster metrics at this instant.
    pub fn prometheus(&self) -> String {
        self.shared.metrics.to_prometheus()
    }

    /// JSONL export of the cluster metrics at this instant.
    pub fn jsonl(&self) -> String {
        self.shared.metrics.to_jsonl()
    }
}

/// Flips the flag, tells the supervisor the coming exits are
/// intentional, forwards `Shutdown` to every shard (best effort), and
/// self-connects to kick the acceptor out of `accept()`.
fn begin_cluster_shutdown(shared: &RouterShared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    if let Some(sup) = shared.supervisor.lock().expect("supervisor lock").as_ref() {
        sup.begin_drain();
    }
    for id in 0..shared.shards.len() as u16 {
        let shard_addr = shared.shards.addr(id);
        let drain = (|| -> Result<(), WireError> {
            let stream = TcpStream::connect_timeout(&shard_addr, CONNECT_TIMEOUT)?;
            stream.set_read_timeout(Some(Duration::from_secs(5)))?;
            let mut writer = stream.try_clone()?;
            let mut reader = BufReader::new(stream);
            write_request(&mut writer, &Request::Shutdown)?;
            read_frame(&mut reader)?;
            Ok(())
        })();
        if drain.is_err() && shared.shards.is_alive(id) {
            eprintln!("xtree-cluster: shard {id} did not acknowledge shutdown");
        }
    }
    let _ = TcpStream::connect(addr);
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().ok();
        let _ = std::thread::Builder::new()
            .name("xtree-cluster-conn".into())
            .spawn(move || {
                let local = addr.unwrap_or_else(|| "0.0.0.0:0".parse().expect("literal addr"));
                handle_connection(stream, &shared, local);
            });
    }
}

/// A shard connection a handler keeps warm, tagged with the roster
/// generation it was dialed under — a supervisor restart bumps the
/// generation and the stale socket is dropped instead of written to.
struct CachedConn {
    generation: u64,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

type ConnCache = HashMap<u16, CachedConn>;

fn open_shard_conn(addr: SocketAddr, generation: u64) -> Result<CachedConn, WireError> {
    let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    stream.set_nodelay(true).ok();
    let writer = stream.try_clone()?;
    Ok(CachedConn {
        generation,
        reader: BufReader::new(stream),
        writer,
    })
}

/// One forward attempt: write the framed request to `shard`, read one
/// response frame back. Any failure invalidates the cached connection.
/// `io_timeout` bounds both socket directions for this attempt; `None`
/// restores blocking I/O (cached connections may carry a previous
/// budgeted request's timeouts, so it is applied every attempt).
fn try_forward(
    shared: &RouterShared,
    conns: &mut ConnCache,
    shard: u16,
    framed: &[u8],
    io_timeout: Option<Duration>,
) -> Result<Vec<u8>, WireError> {
    let generation = shared.shards.generation(shard);
    let needs_dial = match conns.get(&shard) {
        Some(c) => c.generation != generation,
        None => true,
    };
    if needs_dial {
        let conn = open_shard_conn(shared.shards.addr(shard), generation)?;
        conns.insert(shard, conn);
    }
    let conn = conns.get_mut(&shard).expect("just inserted");
    conn.writer.set_read_timeout(io_timeout).ok();
    conn.writer.set_write_timeout(io_timeout).ok();
    let result = (|| {
        conn.writer.write_all(framed)?;
        conn.writer.flush()?;
        match read_frame(&mut conn.reader)? {
            Some(payload) => Ok(payload),
            None => Err(WireError::Closed),
        }
    })();
    if result.is_err() {
        conns.remove(&shard);
    }
    result
}

/// Replays the hottest keys owned by `shard` into its freshly restarted
/// cache. Safe because `Embed` is a pure function of the key — warmup is
/// just asking the shard, ahead of time, what clients will ask it again.
fn warm_shard(shared: &RouterShared, shard: u16) {
    let keys = shared.hot.lock().expect("hot keys").top(WARMUP_TOP_K);
    let owned: Vec<EmbeddingKey> = keys
        .into_iter()
        .filter(|key| {
            let hash = shared.ring.key_hash(key);
            // Route on the ring as it stands once this shard is back.
            shared
                .ring
                .route_live(hash, |s| s == shard || shared.shards.is_alive(s))
                == Some(shard)
        })
        .collect();
    if owned.is_empty() {
        return;
    }
    let mut warmed = 0u64;
    let _ = (|| -> Result<(), WireError> {
        let stream = TcpStream::connect_timeout(&shared.shards.addr(shard), CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(WARMUP_TIMEOUT))?;
        stream.set_write_timeout(Some(WARMUP_TIMEOUT))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        for key in &owned {
            let req = Request::Embed {
                family: key.family,
                nodes: key.nodes,
                seed: key.seed,
                theorem: key.theorem,
            };
            // A key heated by host-tagged traffic is replayed with the
            // same tag; X-tree keys keep the pre-host frame bytes.
            let host = (key.host != HOST_XTREE).then_some(key.host);
            write_request_host(&mut writer, &req, None, host)?;
            match read_frame(&mut reader)? {
                Some(_) => warmed += 1,
                None => break,
            }
        }
        Ok(())
    })();
    shared.metrics.count_warmup_keys(warmed);
    if warmed > 0 {
        eprintln!("xtree-cluster: shard {shard} cache warmed with {warmed} hot keys");
    }
}

/// Whether a shard's response payload is the typed "server is draining"
/// refusal — a shard answering that cannot serve this request and is
/// about to close its listener, so the router treats it like a transport
/// failure and replays elsewhere.
fn is_draining_error(payload: &[u8]) -> bool {
    matches!(
        decode_response(payload),
        Ok(Response::Error {
            code: ERR_SHUTTING_DOWN,
            ..
        })
    )
}

/// The relay-or-respond result of routing: either raw shard payload
/// bytes to copy to the client verbatim, or a response the router built
/// itself.
enum Outcome {
    Raw(Vec<u8>),
    Built(Response),
}

/// Routes one compute request with replay: pick the closest live shard,
/// forward, and on transport failure feed the detector, wait out the
/// backoff, and re-route — the ring may eject the shard meanwhile,
/// sliding the key to its clockwise successor. Returns the raw response
/// payload to relay, or the typed terminal error.
///
/// When the client supplied a deadline budget, every attempt first
/// deducts the time already spent (forwarding, backoff sleeps, dead
/// shards): the frame is re-encoded carrying only the remaining budget,
/// socket I/O is bounded by it, and an empty budget terminates the replay
/// loop with `ERR_DEADLINE` instead of burning attempts the client has
/// already given up on.
fn forward_with_replay(
    shared: &RouterShared,
    conns: &mut ConnCache,
    key: &EmbeddingKey,
    req: &Request,
    host: Option<u8>,
    deadline: Option<Instant>,
) -> Outcome {
    let mut payload = Vec::new();
    encode_request_host(req, None, host, &mut payload);
    let mut framed = frame(&payload);
    let hash = shared.ring.key_hash(key);
    let start = Instant::now();
    let mut found_live = false;
    for attempt in 0..=shared.replay.max_retries {
        if attempt > 0 {
            let mut wait =
                Duration::from_millis(u64::from(shared.replay.backoff.delay(attempt - 1)));
            if let Some(d) = deadline {
                wait = wait.min(d.saturating_duration_since(Instant::now()));
            }
            std::thread::sleep(wait);
        }
        let io_timeout = match deadline {
            None => None,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    shared.metrics.count_deadline_reject();
                    return Outcome::Built(deadline_reject("router"));
                }
                payload.clear();
                encode_request_host(req, Some(remaining.as_micros() as u64), host, &mut payload);
                framed = frame(&payload);
                Some(remaining.max(Duration::from_millis(1)).min(FORWARD_TIMEOUT))
            }
        };
        let Some(shard) = shared
            .ring
            .route_live(hash, |id| shared.shards.is_alive(id))
        else {
            // Nobody is live right now; the supervisor may be mid-restart,
            // so spend the budget waiting rather than failing fast.
            continue;
        };
        found_live = true;
        shared.metrics.count_routed(shard);
        if attempt > 0 {
            shared.metrics.count_replayed(shard);
        }
        match try_forward(shared, conns, shard, &framed, io_timeout) {
            Ok(resp_payload) => {
                // A shard that answers "I am draining" is as gone as one
                // that dropped the connection — its listener closes next.
                // Fail over instead of relaying the refusal.
                if is_draining_error(&resp_payload) {
                    conns.remove(&shard);
                    shared.metrics.count_failed(shard);
                    shared.shards.report_failure(shard);
                    continue;
                }
                shared.shards.report_success(shard, None);
                if attempt > 0 {
                    shared
                        .metrics
                        .observe_failover_us(start.elapsed().as_micros() as u64);
                }
                return Outcome::Raw(resp_payload);
            }
            Err(e) if e.is_transport() => {
                shared.metrics.count_failed(shard);
                if matches!(e, WireError::TimedOut) {
                    shared.metrics.count_timeout(shard);
                }
                // A shard that outran its socket deadline is suspect, not
                // dead: it strikes at half the weight of a disconnect.
                shared
                    .shards
                    .report_failure_kind(shard, FailureKind::from_error(&e));
            }
            Err(_) => {
                // Protocol-level trouble on the shard link (garbled or
                // oversized frame). With fault injection in the picture
                // this indicts the *link*, not the request — the request
                // bytes we sent are known-well-formed — so strike the
                // shard and replay on a fresh connection.
                shared.metrics.count_failed(shard);
                shared
                    .shards
                    .report_failure_kind(shard, FailureKind::Disconnect);
            }
        }
    }
    Outcome::Built(if found_live {
        shared.metrics.count_exhausted();
        Response::Error {
            code: ERR_EXHAUSTED,
            message: format!(
                "replay budget exhausted after {} attempts",
                shared.replay.max_retries + 1
            ),
        }
    } else {
        shared.metrics.count_unreachable();
        Response::Error {
            code: ERR_UNREACHABLE,
            message: "no live shard".into(),
        }
    })
}

/// Aggregates a `Stats` snapshot across the shard roster: counters sum;
/// percentiles and depths take the max (a conservative cluster-wide
/// tail). Shards that are dead, unreachable, or slower than
/// [`STATS_TIMEOUT`] are no longer silently absorbed into the sum: the
/// snapshot comes back with `partial = true`, so a reader can tell a
/// quiet cluster from a half-blind aggregation.
fn aggregate_stats(shared: &RouterShared) -> WireStats {
    let mut total = WireStats::default();
    let roster = shared.shards.len() as u16;
    let mut answered = 0u16;
    for id in 0..roster {
        if !shared.shards.is_alive(id) {
            continue;
        }
        let snap = (|| -> Result<WireStats, WireError> {
            let stream = TcpStream::connect_timeout(&shared.shards.addr(id), CONNECT_TIMEOUT)?;
            stream.set_read_timeout(Some(STATS_TIMEOUT))?;
            stream.set_write_timeout(Some(STATS_TIMEOUT))?;
            let mut writer = stream.try_clone()?;
            let mut reader = BufReader::new(stream);
            write_request(&mut writer, &Request::Stats)?;
            match read_frame(&mut reader)? {
                Some(bytes) => match decode_response(&bytes)? {
                    Response::StatsOk(s) => Ok(s),
                    _ => Err(WireError::Closed),
                },
                None => Err(WireError::Closed),
            }
        })();
        let s = match snap {
            Ok(s) => s,
            Err(e) => {
                if matches!(e, WireError::TimedOut) {
                    shared.metrics.count_timeout(id);
                }
                continue;
            }
        };
        answered += 1;
        total.partial |= s.partial;
        total.requests += s.requests;
        total.embeds += s.embeds;
        total.simulates += s.simulates;
        total.overloaded += s.overloaded;
        total.errors += s.errors;
        total.cache_hits += s.cache_hits;
        total.cache_misses += s.cache_misses;
        total.cache_entries += s.cache_entries;
        total.queue_depth += s.queue_depth;
        total.latency_count += s.latency_count;
        total.latency_p50_us = total.latency_p50_us.max(s.latency_p50_us);
        total.latency_p95_us = total.latency_p95_us.max(s.latency_p95_us);
        total.latency_p99_us = total.latency_p99_us.max(s.latency_p99_us);
        total.sim_hops += s.sim_hops;
        total.sim_delivered += s.sim_delivered;
    }
    total.partial |= answered < roster;
    total
}

/// The router's own `Health` payload: live-shard count as queue depth
/// proxy is wrong — instead report the aggregate cache totals from the
/// last probes and the router's uptime; queue depth is the number of
/// *dead* shards (0 = all healthy), which is the one scalar a cluster
/// health check actually wants.
fn router_health(shared: &RouterShared) -> HealthInfo {
    let mut hits = 0;
    let mut misses = 0;
    for id in 0..shared.shards.len() as u16 {
        if let Some(info) = shared.shards.last_info(id) {
            hits += info.cache_hits;
            misses += info.cache_misses;
        }
    }
    HealthInfo {
        queue_depth: (shared.shards.len() - shared.shards.live_count()) as u64,
        cache_hits: hits,
        cache_misses: misses,
        uptime_s: shared.started.elapsed().as_secs(),
    }
}

fn wire_reject(e: &WireError) -> Response {
    Response::Error {
        code: ERR_BAD_REQUEST,
        message: format!("bad request: {e}"),
    }
}

/// Serves one client connection until EOF, a wire error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &RouterShared, local: SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conns = ConnCache::new();
    loop {
        let (req, deadline_us, host) = match read_frame(&mut reader) {
            Ok(Some(bytes)) => match decode_request_host(&bytes) {
                Ok(decoded) => decoded,
                Err(e) => {
                    shared.metrics.count_request();
                    let _ = write_response(&mut writer, &wire_reject(&e));
                    return;
                }
            },
            Ok(None) => return,
            Err(WireError::Io(_) | WireError::Reset | WireError::Closed) => return,
            Err(e) => {
                shared.metrics.count_request();
                let _ = write_response(&mut writer, &wire_reject(&e));
                return;
            }
        };
        shared.metrics.count_request();
        // The trailing budget is the client's *remaining* patience at
        // send time; the clock for it starts at receipt.
        let deadline = deadline_us.map(|us| Instant::now() + Duration::from_micros(us));
        if deadline_us == Some(0) {
            shared.metrics.count_deadline_reject();
            if write_response(&mut writer, &deadline_reject("router admission")).is_err() {
                return;
            }
            continue;
        }
        let outcome = match &req {
            Request::Health => Outcome::Built(Response::HealthOk {
                info: Some(router_health(shared)),
            }),
            Request::Stats => Outcome::Built(Response::StatsOk(aggregate_stats(shared))),
            Request::Shutdown => Outcome::Built(Response::ShutdownOk {
                pending: (shared.shards.len() - shared.shards.live_count()) as u64,
            }),
            Request::Embed {
                family,
                nodes,
                seed,
                theorem,
            }
            | Request::Simulate {
                family,
                nodes,
                seed,
                theorem,
                ..
            } => {
                let key = EmbeddingKey {
                    family: *family,
                    nodes: *nodes,
                    seed: *seed,
                    theorem: *theorem,
                    host: host.unwrap_or(HOST_XTREE),
                };
                shared.hot.lock().expect("hot keys").touch(key);
                forward_with_replay(shared, &mut conns, &key, &req, host, deadline)
            }
        };
        let written = match &outcome {
            Outcome::Raw(payload) => writer
                .write_all(&frame(payload))
                .and_then(|()| writer.flush())
                .is_ok(),
            Outcome::Built(resp) => write_response(&mut writer, resp).is_ok(),
        };
        if !written {
            return;
        }
        if matches!(req, Request::Shutdown) {
            begin_cluster_shutdown(shared, local);
            return;
        }
    }
}

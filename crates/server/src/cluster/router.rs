//! The cluster front door: one XWIRE1 listener that owns no compute.
//!
//! A router handler decodes each client request just far enough to learn
//! its routing key — the embedding-cache key `(family, nodes, seed,
//! theorem)` — hashes it onto the [`HashRing`], and forwards the
//! re-encoded frame to the owning shard, relaying the shard's response
//! payload back verbatim. Keeping the routing key equal to the cache key
//! means every shard's LRU only ever sees its own slice of the key
//! space: the cluster's aggregate cache is partitioned, not replicated.
//!
//! Failover is *replay*, and replay is safe by construction: `Embed` and
//! `Simulate` are pure functions of their request fields (the daemon
//! computes the same bytes for the same request, cache hit or not), so a
//! request whose shard died mid-flight can be re-sent — to the same
//! shard after reconnecting, or to the next live shard clockwise once
//! the failure detector ejects the dead one — without any risk of
//! double-applied effects. The only observable difference is the
//! response's `cached` convenience flag, which reports *which shard's*
//! cache answered; the integration tests normalise it before comparing
//! bytes. Budget and pacing reuse the client's [`ReconnectPolicy`]
//! (`max_retries` + Fixed/Exponential [`xtree_sim::Backoff`] in milliseconds — the
//! simulator's `RecoveryPolicy` shape). When every attempt found no live
//! shard the client gets `ERR_UNREACHABLE`; when the budget dies on live
//! shards it gets `ERR_EXHAUSTED`.
//!
//! Control requests never cross the ring: `Health` answers with the
//! router's own load signal, `Stats` aggregates a snapshot from every
//! live shard, and `Shutdown` drains the whole cluster — stop the
//! prober, tell the supervisor the coming exits are intentional, forward
//! `Shutdown` to every shard, then let `wait()` reap.

use super::health::{HealthMonitor, ShardSet};
use super::metrics::ClusterMetrics;
use super::ring::HashRing;
use super::supervisor::Supervisor;
use crate::cache::EmbeddingKey;
use crate::client::{Client, ReconnectPolicy};
use crate::wire::{
    decode_request, decode_response, encode_request, frame, read_frame, write_request,
    write_response, HealthInfo, Request, Response, WireError, WireStats, ERR_BAD_REQUEST,
    ERR_EXHAUSTED, ERR_SHUTTING_DOWN, ERR_UNREACHABLE,
};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a router is shaped: where it listens, who its shards are, and how
/// it detects and rides over their failures.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Shard daemon addresses; index = shard id on the ring.
    pub shards: Vec<SocketAddr>,
    /// Seed for the consistent-hash ring (placement is a pure function
    /// of this and the roster).
    pub ring_seed: u64,
    /// Virtual nodes per shard.
    pub vnodes: u32,
    /// Health-probe period.
    pub probe_interval: Duration,
    /// Consecutive failures (probe or forward) that eject a shard.
    pub fail_after: u32,
    /// Replay budget and pacing for failed forwards.
    pub replay: ReconnectPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            ring_seed: 1991,
            vnodes: HashRing::DEFAULT_VNODES,
            probe_interval: Duration::from_millis(100),
            fail_after: 3,
            replay: ReconnectPolicy {
                max_retries: 8,
                backoff: xtree_sim::Backoff::Exponential { base: 25, cap: 800 },
            },
        }
    }
}

/// Dialing a shard that stops answering its accept queue must not hang a
/// client forever.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

struct RouterShared {
    ring: HashRing,
    shards: Arc<ShardSet>,
    metrics: Arc<ClusterMetrics>,
    replay: ReconnectPolicy,
    shutdown: AtomicBool,
    started: Instant,
    /// Present when the shards are child processes the router owns.
    supervisor: Mutex<Option<Supervisor>>,
}

/// A running router. Send it a wire `Shutdown` (or call
/// [`Router::shutdown`]) and then [`Router::wait`].
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    monitor: HealthMonitor,
    acceptor: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `config.addr`, builds the ring over `config.shards`, and
    /// starts the acceptor and health monitor.
    ///
    /// # Errors
    /// The bind failure, or `InvalidInput` for an empty shard roster.
    pub fn spawn(config: &RouterConfig) -> std::io::Result<Router> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shards = ShardSet::new(&config.shards, config.fail_after);
        let shared = Arc::new(RouterShared {
            ring: HashRing::with_shards(
                config.ring_seed,
                config.vnodes,
                config.shards.len() as u16,
            ),
            shards: Arc::clone(&shards),
            metrics: Arc::new(ClusterMetrics::new(config.shards.len())),
            replay: config.replay,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            supervisor: Mutex::new(None),
        });
        let monitor = HealthMonitor::spawn(shards, config.probe_interval);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xtree-cluster-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .expect("spawn cluster acceptor")
        };
        Ok(Router {
            local_addr,
            shared,
            monitor,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port picked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared shard roster (liveness, addresses) — what a supervisor
    /// pushes restarted addresses into.
    pub fn shard_set(&self) -> Arc<ShardSet> {
        Arc::clone(&self.shared.shards)
    }

    /// The shared cluster metrics — what a supervisor counts restarts
    /// into.
    pub fn metrics(&self) -> Arc<ClusterMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Hands the router the supervisor owning the shard processes, so a
    /// wire `Shutdown` can drain them too.
    pub fn attach_supervisor(&self, sup: Supervisor) {
        *self.shared.supervisor.lock().expect("supervisor lock") = Some(sup);
    }

    /// Initiates the same cluster-wide drain a wire `Shutdown` does.
    pub fn shutdown(&self) {
        begin_cluster_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the acceptor has exited, then stops the prober and
    /// reaps any supervised shard processes. Idempotent; metrics remain
    /// readable afterwards.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.monitor.stop();
        if let Some(mut sup) = self
            .shared
            .supervisor
            .lock()
            .expect("supervisor lock")
            .take()
        {
            sup.wait();
        }
    }

    /// Prometheus exposition of the cluster metrics at this instant.
    pub fn prometheus(&self) -> String {
        self.shared.metrics.to_prometheus()
    }

    /// JSONL export of the cluster metrics at this instant.
    pub fn jsonl(&self) -> String {
        self.shared.metrics.to_jsonl()
    }
}

/// Flips the flag, tells the supervisor the coming exits are
/// intentional, forwards `Shutdown` to every shard (best effort), and
/// self-connects to kick the acceptor out of `accept()`.
fn begin_cluster_shutdown(shared: &RouterShared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    if let Some(sup) = shared.supervisor.lock().expect("supervisor lock").as_ref() {
        sup.begin_drain();
    }
    for id in 0..shared.shards.len() as u16 {
        let shard_addr = shared.shards.addr(id);
        let drain = (|| -> Result<(), WireError> {
            let stream = TcpStream::connect_timeout(&shard_addr, CONNECT_TIMEOUT)?;
            stream.set_read_timeout(Some(Duration::from_secs(5)))?;
            let mut writer = stream.try_clone()?;
            let mut reader = BufReader::new(stream);
            write_request(&mut writer, &Request::Shutdown)?;
            read_frame(&mut reader)?;
            Ok(())
        })();
        if drain.is_err() && shared.shards.is_alive(id) {
            eprintln!("xtree-cluster: shard {id} did not acknowledge shutdown");
        }
    }
    let _ = TcpStream::connect(addr);
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().ok();
        let _ = std::thread::Builder::new()
            .name("xtree-cluster-conn".into())
            .spawn(move || {
                let local = addr.unwrap_or_else(|| "0.0.0.0:0".parse().expect("literal addr"));
                handle_connection(stream, &shared, local);
            });
    }
}

/// A shard connection a handler keeps warm, tagged with the roster
/// generation it was dialed under — a supervisor restart bumps the
/// generation and the stale socket is dropped instead of written to.
struct CachedConn {
    generation: u64,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

type ConnCache = HashMap<u16, CachedConn>;

fn open_shard_conn(addr: SocketAddr, generation: u64) -> Result<CachedConn, WireError> {
    let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    stream.set_nodelay(true).ok();
    let writer = stream.try_clone()?;
    Ok(CachedConn {
        generation,
        reader: BufReader::new(stream),
        writer,
    })
}

/// One forward attempt: write the framed request to `shard`, read one
/// response frame back. Any failure invalidates the cached connection.
fn try_forward(
    shared: &RouterShared,
    conns: &mut ConnCache,
    shard: u16,
    framed: &[u8],
) -> Result<Vec<u8>, WireError> {
    let generation = shared.shards.generation(shard);
    let needs_dial = match conns.get(&shard) {
        Some(c) => c.generation != generation,
        None => true,
    };
    if needs_dial {
        let conn = open_shard_conn(shared.shards.addr(shard), generation)?;
        conns.insert(shard, conn);
    }
    let conn = conns.get_mut(&shard).expect("just inserted");
    let result = (|| {
        conn.writer.write_all(framed)?;
        conn.writer.flush()?;
        match read_frame(&mut conn.reader)? {
            Some(payload) => Ok(payload),
            None => Err(WireError::Closed),
        }
    })();
    if result.is_err() {
        conns.remove(&shard);
    }
    result
}

/// Whether a shard's response payload is the typed "server is draining"
/// refusal — a shard answering that cannot serve this request and is
/// about to close its listener, so the router treats it like a transport
/// failure and replays elsewhere.
fn is_draining_error(payload: &[u8]) -> bool {
    matches!(
        decode_response(payload),
        Ok(Response::Error {
            code: ERR_SHUTTING_DOWN,
            ..
        })
    )
}

/// The relay-or-respond result of routing: either raw shard payload
/// bytes to copy to the client verbatim, or a response the router built
/// itself.
enum Outcome {
    Raw(Vec<u8>),
    Built(Response),
}

/// Routes one compute request with replay: pick the closest live shard,
/// forward, and on transport failure feed the detector, wait out the
/// backoff, and re-route — the ring may eject the shard meanwhile,
/// sliding the key to its clockwise successor. Returns the raw response
/// payload to relay, or the typed terminal error.
fn forward_with_replay(
    shared: &RouterShared,
    conns: &mut ConnCache,
    key: &EmbeddingKey,
    req: &Request,
) -> Outcome {
    let mut payload = Vec::new();
    encode_request(req, &mut payload);
    let framed = frame(&payload);
    let hash = shared.ring.key_hash(key);
    let start = Instant::now();
    let mut found_live = false;
    for attempt in 0..=shared.replay.max_retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(u64::from(
                shared.replay.backoff.delay(attempt - 1),
            )));
        }
        let Some(shard) = shared
            .ring
            .route_live(hash, |id| shared.shards.is_alive(id))
        else {
            // Nobody is live right now; the supervisor may be mid-restart,
            // so spend the budget waiting rather than failing fast.
            continue;
        };
        found_live = true;
        shared.metrics.count_routed(shard);
        if attempt > 0 {
            shared.metrics.count_replayed(shard);
        }
        match try_forward(shared, conns, shard, &framed) {
            Ok(resp_payload) => {
                // A shard that answers "I am draining" is as gone as one
                // that dropped the connection — its listener closes next.
                // Fail over instead of relaying the refusal.
                if is_draining_error(&resp_payload) {
                    conns.remove(&shard);
                    shared.metrics.count_failed(shard);
                    shared.shards.report_failure(shard);
                    continue;
                }
                shared.shards.report_success(shard, None);
                if attempt > 0 {
                    shared
                        .metrics
                        .observe_failover_us(start.elapsed().as_micros() as u64);
                }
                return Outcome::Raw(resp_payload);
            }
            Err(e) if e.is_transport() => {
                shared.metrics.count_failed(shard);
                shared.shards.report_failure(shard);
            }
            Err(_) => {
                // Protocol-level trouble on the shard link (bad frame,
                // oversized declaration): not the shard being dead, and
                // not retryable — the shard would answer identically.
                shared.metrics.count_failed(shard);
                return Outcome::Built(Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: "shard returned an unreadable frame".into(),
                });
            }
        }
    }
    Outcome::Built(if found_live {
        shared.metrics.count_exhausted();
        Response::Error {
            code: ERR_EXHAUSTED,
            message: format!(
                "replay budget exhausted after {} attempts",
                shared.replay.max_retries + 1
            ),
        }
    } else {
        shared.metrics.count_unreachable();
        Response::Error {
            code: ERR_UNREACHABLE,
            message: "no live shard".into(),
        }
    })
}

/// Aggregates a `Stats` snapshot across every live shard: counters sum;
/// percentiles and depths take the max (a conservative cluster-wide
/// tail).
fn aggregate_stats(shared: &RouterShared) -> WireStats {
    let mut total = WireStats::default();
    for id in 0..shared.shards.len() as u16 {
        if !shared.shards.is_alive(id) {
            continue;
        }
        let Ok(mut client) = Client::connect(shared.shards.addr(id)) else {
            continue;
        };
        let Ok(Response::StatsOk(s)) = client.call(&Request::Stats) else {
            continue;
        };
        total.requests += s.requests;
        total.embeds += s.embeds;
        total.simulates += s.simulates;
        total.overloaded += s.overloaded;
        total.errors += s.errors;
        total.cache_hits += s.cache_hits;
        total.cache_misses += s.cache_misses;
        total.cache_entries += s.cache_entries;
        total.queue_depth += s.queue_depth;
        total.latency_count += s.latency_count;
        total.latency_p50_us = total.latency_p50_us.max(s.latency_p50_us);
        total.latency_p95_us = total.latency_p95_us.max(s.latency_p95_us);
        total.latency_p99_us = total.latency_p99_us.max(s.latency_p99_us);
        total.sim_hops += s.sim_hops;
        total.sim_delivered += s.sim_delivered;
    }
    total
}

/// The router's own `Health` payload: live-shard count as queue depth
/// proxy is wrong — instead report the aggregate cache totals from the
/// last probes and the router's uptime; queue depth is the number of
/// *dead* shards (0 = all healthy), which is the one scalar a cluster
/// health check actually wants.
fn router_health(shared: &RouterShared) -> HealthInfo {
    let mut hits = 0;
    let mut misses = 0;
    for id in 0..shared.shards.len() as u16 {
        if let Some(info) = shared.shards.last_info(id) {
            hits += info.cache_hits;
            misses += info.cache_misses;
        }
    }
    HealthInfo {
        queue_depth: (shared.shards.len() - shared.shards.live_count()) as u64,
        cache_hits: hits,
        cache_misses: misses,
        uptime_s: shared.started.elapsed().as_secs(),
    }
}

fn wire_reject(e: &WireError) -> Response {
    Response::Error {
        code: ERR_BAD_REQUEST,
        message: format!("bad request: {e}"),
    }
}

/// Serves one client connection until EOF, a wire error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &RouterShared, local: SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conns = ConnCache::new();
    loop {
        let req = match read_frame(&mut reader) {
            Ok(Some(bytes)) => match decode_request(&bytes) {
                Ok(req) => req,
                Err(e) => {
                    shared.metrics.count_request();
                    let _ = write_response(&mut writer, &wire_reject(&e));
                    return;
                }
            },
            Ok(None) => return,
            Err(WireError::Io(_) | WireError::Reset | WireError::Closed) => return,
            Err(e) => {
                shared.metrics.count_request();
                let _ = write_response(&mut writer, &wire_reject(&e));
                return;
            }
        };
        shared.metrics.count_request();
        let outcome = match &req {
            Request::Health => Outcome::Built(Response::HealthOk {
                info: Some(router_health(shared)),
            }),
            Request::Stats => Outcome::Built(Response::StatsOk(aggregate_stats(shared))),
            Request::Shutdown => Outcome::Built(Response::ShutdownOk {
                pending: (shared.shards.len() - shared.shards.live_count()) as u64,
            }),
            Request::Embed {
                family,
                nodes,
                seed,
                theorem,
            }
            | Request::Simulate {
                family,
                nodes,
                seed,
                theorem,
                ..
            } => {
                let key = EmbeddingKey {
                    family: *family,
                    nodes: *nodes,
                    seed: *seed,
                    theorem: *theorem,
                };
                forward_with_replay(shared, &mut conns, &key, &req)
            }
        };
        let written = match &outcome {
            Outcome::Raw(payload) => writer
                .write_all(&frame(payload))
                .and_then(|()| writer.flush())
                .is_ok(),
            Outcome::Built(resp) => write_response(&mut writer, resp).is_ok(),
        };
        if !written {
            return;
        }
        if matches!(req, Request::Shutdown) {
            begin_cluster_shutdown(shared, local);
            return;
        }
    }
}

//! The seeded consistent-hash ring the router places requests with.
//!
//! Every shard contributes [`HashRing::vnodes`] pseudo-random points on a
//! `u64` circle; a request key hashes to a point and is owned by the
//! first shard point clockwise from it. The payoff is *stability*: when a
//! shard joins or leaves, only the keys whose successor point changed
//! move — in expectation `1/M` of the key space for `M` shards — while
//! every other key keeps its shard, and with it that shard's warm LRU
//! entry. The ring key is exactly the embedding-cache key
//! `(family, nodes, seed, theorem)`, so routing locality *is* cache
//! locality (the demand-aware placement framing of Çela et al.).
//!
//! Everything is seeded and deterministic: two rings built from the same
//! `(seed, vnodes)` and the same member set place every key identically,
//! regardless of the order shards were added — pinned by the proptests in
//! `tests/ring_proptest.rs`.
//!
//! Liveness is intentionally *not* the ring's concern. Ejecting a dead
//! shard is done by filtering at lookup time ([`HashRing::route_live`]),
//! which is equivalent to removing its points (the successor among live
//! points is the successor after removal) without mutating shared state
//! on the failure path.

use crate::cache::EmbeddingKey;

/// SplitMix64's finalizer: a cheap, well-mixed `u64 -> u64` permutation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard ids, with virtual nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    seed: u64,
    vnodes: u32,
    /// All member vnode points, sorted by `(point, shard)`.
    points: Vec<(u64, u16)>,
}

impl HashRing {
    /// Default virtual nodes per shard: enough that ownership imbalance
    /// stays within a few percent, cheap enough that a ring rebuild is
    /// microseconds.
    pub const DEFAULT_VNODES: u32 = 64;

    /// An empty ring. `vnodes` is clamped to ≥ 1.
    pub fn new(seed: u64, vnodes: u32) -> Self {
        HashRing {
            seed,
            vnodes: vnodes.max(1),
            points: Vec::new(),
        }
    }

    /// A ring holding shards `0..count`.
    pub fn with_shards(seed: u64, vnodes: u32, count: u16) -> Self {
        let mut ring = HashRing::new(seed, vnodes);
        for id in 0..count {
            ring.add_shard(id);
        }
        ring
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The point of shard `id`'s `replica`-th virtual node.
    fn point(&self, id: u16, replica: u32) -> u64 {
        mix(self.seed ^ mix((u64::from(id) << 32) | u64::from(replica)))
    }

    /// True when `id` is a member.
    pub fn contains(&self, id: u16) -> bool {
        self.points.iter().any(|&(_, s)| s == id)
    }

    /// Member count (shards, not points).
    pub fn len(&self) -> usize {
        let mut ids: Vec<u16> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// True when no shard is a member.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds shard `id`'s virtual nodes. Idempotent.
    pub fn add_shard(&mut self, id: u16) {
        if self.contains(id) {
            return;
        }
        for replica in 0..self.vnodes {
            let p = (self.point(id, replica), id);
            let at = self.points.partition_point(|q| *q < p);
            self.points.insert(at, p);
        }
    }

    /// Removes shard `id`'s virtual nodes. Idempotent.
    pub fn remove_shard(&mut self, id: u16) {
        self.points.retain(|&(_, s)| s != id);
    }

    /// The seeded hash of a request key — the position on the circle.
    /// Mixing the ring seed in means distinct clusters place the same key
    /// space differently (no accidental cross-cluster hot spots).
    pub fn key_hash(&self, key: &EmbeddingKey) -> u64 {
        let mut h = self.seed ^ 0x5EED_C0DE_5EED_C0DE;
        for v in [
            u64::from(key.family),
            key.nodes,
            key.seed,
            u64::from(key.theorem),
            u64::from(key.host),
        ] {
            h = mix(h ^ v);
        }
        h
    }

    /// The shard owning `hash`: the first point clockwise (wrapping).
    pub fn route(&self, hash: u64) -> Option<u16> {
        self.route_live(hash, |_| true)
    }

    /// The first *live* shard clockwise from `hash` — equivalent to
    /// routing on a ring with every dead shard's points removed, without
    /// mutating the ring.
    pub fn route_live<F: Fn(u16) -> bool>(&self, hash: u64, alive: F) -> Option<u16> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if alive(shard) {
                return Some(shard);
            }
        }
        None
    }

    /// The shard for a request key among live shards.
    pub fn route_key<F: Fn(u16) -> bool>(&self, key: &EmbeddingKey, alive: F) -> Option<u16> {
        self.route_live(self.key_hash(key), alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> EmbeddingKey {
        EmbeddingKey {
            family: (seed % 8) as u8,
            nodes: 496 + seed % 1000,
            seed,
            theorem: 1 + (seed % 2) as u8,
            host: (seed % 3) as u8,
        }
    }

    #[test]
    fn routes_are_deterministic_and_order_independent() {
        let mut a = HashRing::new(7, 64);
        for id in [0u16, 1, 2, 3] {
            a.add_shard(id);
        }
        let mut b = HashRing::new(7, 64);
        for id in [3u16, 1, 0, 2] {
            b.add_shard(id);
        }
        for s in 0..500 {
            let k = key(s);
            assert_eq!(a.route_key(&k, |_| true), b.route_key(&k, |_| true));
        }
    }

    #[test]
    fn skipping_dead_equals_removing() {
        let full = HashRing::with_shards(42, 64, 4);
        let mut removed = full.clone();
        removed.remove_shard(2);
        for s in 0..500 {
            let k = key(s);
            assert_eq!(
                full.route_key(&k, |id| id != 2),
                removed.route_key(&k, |_| true),
                "lookup-time filtering must equal point removal"
            );
        }
    }

    #[test]
    fn empty_and_all_dead_route_nowhere() {
        let ring = HashRing::new(1, 8);
        assert_eq!(ring.route(123), None);
        let ring = HashRing::with_shards(1, 8, 3);
        assert_eq!(ring.route_live(123, |_| false), None);
    }

    #[test]
    fn load_spreads_over_shards() {
        let ring = HashRing::with_shards(9, 64, 4);
        let mut counts = [0usize; 4];
        for s in 0..4000 {
            counts[usize::from(ring.route_key(&key(s), |_| true).unwrap())] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2000).contains(&c),
                "shard {id} owns {c}/4000 keys — vnode placement is badly skewed"
            );
        }
    }
}

//! Shard process lifecycle: spawn, watch, restart, drain.
//!
//! The `cluster` CLI runs each shard as a separate `xtree-cli serve`
//! process on an ephemeral port (`--addr 127.0.0.1:0`), so a shard crash
//! is a real process death with real connection resets — exactly the
//! failure the router's replay path exists for. [`spawn_shard`] pipes the
//! child's stdout and blocks until the daemon's readiness line names the
//! port the kernel actually assigned.
//!
//! The [`Supervisor`] thread polls its children with `try_wait`. A child
//! that exited (crashed or was `kill -9`ed) is restarted after a backoff
//! that grows with that slot's restart count, and the fresh address is
//! pushed into the shared [`ShardSet`] — which readmits the shard and
//! bumps its connection-cache generation, so the router starts routing to
//! the replacement without any coordination beyond that one store.
//!
//! Drain is cooperative: the router flips [`Supervisor::begin_drain`]
//! *before* forwarding `Shutdown` to the shards, so the supervisor reads
//! the resulting exits as intentional instead of resurrecting the
//! cluster it is trying to stop.

use super::health::ShardSet;
use super::metrics::ClusterMetrics;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use xtree_sim::Backoff;

/// Called with a shard id right after the supervisor restarts that shard
/// and publishes its fresh address — the router installs its hot-key
/// cache warmer here, so a replacement shard starts with the cluster's
/// hottest embeddings instead of a cold LRU.
pub type WarmupFn = Arc<dyn Fn(u16) + Send + Sync>;

/// How to launch one shard: a program and its argument list. The address
/// argument must request an ephemeral port (`127.0.0.1:0`); the actual
/// port is read back from the readiness line.
#[derive(Clone, Debug)]
pub struct ShardCommand {
    /// Binary to execute (normally `std::env::current_exe()`).
    pub program: std::path::PathBuf,
    /// Arguments, e.g. `["serve", "--addr", "127.0.0.1:0", ...]`.
    pub args: Vec<String>,
}

/// A live shard process and where it listens.
#[derive(Debug)]
pub struct ShardChild {
    /// OS process id (what a chaos test `kill -9`s).
    pub pid: u32,
    /// The ephemeral address the child reported in its readiness line.
    pub addr: SocketAddr,
    child: Child,
}

impl ShardChild {
    /// Non-blocking liveness check; `Some(..)` once the process exited.
    fn try_wait(&mut self) -> std::io::Result<Option<std::process::ExitStatus>> {
        self.child.try_wait()
    }

    /// Blocks until the process exits, killing it after `timeout`.
    fn reap(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    self.child.kill().ok();
                    self.child.wait().ok();
                    return;
                }
            }
        }
    }
}

/// Extracts the socket address from a daemon readiness line of the form
/// `... listening on 127.0.0.1:40123 ...`.
pub fn parse_listen_addr(line: &str) -> Option<SocketAddr> {
    let rest = line.split("listening on ").nth(1)?;
    let token = rest.split_whitespace().next()?;
    token.parse().ok()
}

/// Spawns one shard process and blocks until it prints its readiness
/// line (or `timeout` passes / the child exits early). The child's
/// stderr is inherited so shard diagnostics land in the cluster log;
/// stdout is drained by a detached thread after readiness so the pipe
/// can never fill and stall the shard.
///
/// # Errors
/// Spawn failures, early child exit, unparseable readiness line, or
/// timeout — all as `io::Error`.
pub fn spawn_shard(cmd: &ShardCommand, timeout: Duration) -> std::io::Result<ShardChild> {
    let mut child = Command::new(&cmd.program)
        .args(&cmd.args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let deadline = Instant::now() + timeout;
    let mut line = String::new();
    let addr = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let status = child.wait()?;
                return Err(std::io::Error::other(format!(
                    "shard exited before readiness ({status})"
                )));
            }
            Ok(_) => {
                if let Some(addr) = parse_listen_addr(&line) {
                    break addr;
                }
            }
            Err(e) => {
                child.kill().ok();
                child.wait().ok();
                return Err(e);
            }
        }
        if Instant::now() > deadline {
            child.kill().ok();
            child.wait().ok();
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "shard readiness timed out",
            ));
        }
    };
    // Keep the pipe drained for the daemon's remaining output (one drain
    // line at shutdown) without holding this thread.
    thread::Builder::new()
        .name("xtree-shard-stdout".into())
        .spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        })
        .ok();
    Ok(ShardChild {
        pid: child.id(),
        addr,
        child,
    })
}

struct SupervisorInner {
    children: Mutex<Vec<ShardChild>>,
    cmd: ShardCommand,
    shards: Arc<ShardSet>,
    metrics: Arc<ClusterMetrics>,
    draining: AtomicBool,
    restart_backoff: Backoff,
    readiness_timeout: Duration,
    warmup: Option<WarmupFn>,
}

/// The background thread that keeps the shard roster populated.
pub struct Supervisor {
    inner: Arc<SupervisorInner>,
    handle: Option<thread::JoinHandle<()>>,
}

/// How often the supervisor polls children for exits.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

impl Supervisor {
    /// Takes ownership of already-spawned `children` (index = shard id)
    /// and starts watching them. `restart_backoff` (milliseconds) paces
    /// restarts per slot: attempt `k` of the same slot waits
    /// `backoff.delay(k)`. `warmup`, when present, runs after each
    /// restarted shard's address is published (router cache warmup).
    pub fn spawn(
        children: Vec<ShardChild>,
        cmd: ShardCommand,
        shards: Arc<ShardSet>,
        metrics: Arc<ClusterMetrics>,
        restart_backoff: Backoff,
        readiness_timeout: Duration,
        warmup: Option<WarmupFn>,
    ) -> Supervisor {
        let inner = Arc::new(SupervisorInner {
            children: Mutex::new(children),
            cmd,
            shards,
            metrics,
            draining: AtomicBool::new(false),
            restart_backoff,
            readiness_timeout,
            warmup,
        });
        let inner2 = Arc::clone(&inner);
        let handle = thread::Builder::new()
            .name("xtree-cluster-supervisor".into())
            .spawn(move || supervise(&inner2))
            .expect("spawn supervisor");
        Supervisor {
            inner,
            handle: Some(handle),
        }
    }

    /// Current pid of shard `id` (changes across restarts).
    pub fn pid(&self, id: u16) -> u32 {
        self.inner.children.lock().expect("children lock")[usize::from(id)].pid
    }

    /// Stops restarting: subsequent child exits are treated as the
    /// intentional result of a drain.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Relaxed);
    }

    /// Joins the watch thread and reaps every child (killing any that
    /// ignore the drain for more than a few seconds). Idempotent.
    pub fn wait(&mut self) {
        self.begin_drain();
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
        let mut children = self.inner.children.lock().expect("children lock");
        for child in children.iter_mut() {
            child.reap(Duration::from_secs(5));
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.wait();
    }
}

fn supervise(inner: &SupervisorInner) {
    // Per-slot restart counts drive the backoff; they persist for the
    // supervisor's lifetime so a crash-looping shard backs off to the cap
    // instead of spinning.
    let n = inner.children.lock().expect("children lock").len();
    let mut restarts = vec![0u32; n];
    let mut next_attempt = vec![Instant::now(); n];
    while !inner.draining.load(Relaxed) {
        for id in 0..n {
            if inner.draining.load(Relaxed) {
                return;
            }
            let exited = {
                let mut children = inner.children.lock().expect("children lock");
                matches!(children[id].try_wait(), Ok(Some(_)))
            };
            if !exited || Instant::now() < next_attempt[id] {
                continue;
            }
            let attempt = restarts[id];
            match spawn_shard(&inner.cmd, inner.readiness_timeout) {
                Ok(fresh) => {
                    eprintln!(
                        "xtree-cluster: shard {id} restarted (pid {}, {})",
                        fresh.pid, fresh.addr
                    );
                    inner.shards.set_addr(id as u16, fresh.addr);
                    inner.metrics.count_restart();
                    inner.children.lock().expect("children lock")[id] = fresh;
                    restarts[id] = attempt + 1;
                    next_attempt[id] = Instant::now();
                    if let Some(warm) = &inner.warmup {
                        warm(id as u16);
                    }
                }
                Err(e) => {
                    eprintln!("xtree-cluster: shard {id} restart failed: {e}");
                    restarts[id] = attempt + 1;
                    next_attempt[id] = Instant::now()
                        + Duration::from_millis(u64::from(inner.restart_backoff.delay(attempt)));
                }
            }
        }
        thread::sleep(POLL_INTERVAL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_daemon_readiness_lines() {
        assert_eq!(
            parse_listen_addr(
                "xtree-server listening on 127.0.0.1:40123 (4 workers, queue 64, cache 256)"
            ),
            Some("127.0.0.1:40123".parse().unwrap())
        );
        assert_eq!(
            parse_listen_addr("xtree-cluster router listening on 127.0.0.1:7170 (2 shards)"),
            Some("127.0.0.1:7170".parse().unwrap())
        );
        assert_eq!(parse_listen_addr("something else"), None);
        assert_eq!(parse_listen_addr("listening on notanaddr here"), None);
    }

    #[test]
    fn spawn_shard_reports_early_exit() {
        let cmd = ShardCommand {
            program: "/bin/sh".into(),
            args: vec!["-c".into(), "exit 3".into()],
        };
        let err = spawn_shard(&cmd, Duration::from_secs(2)).unwrap_err();
        assert!(
            err.to_string().contains("before readiness"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn spawn_shard_parses_readiness_from_a_fake_shard() {
        let cmd = ShardCommand {
            program: "/bin/sh".into(),
            args: vec![
                "-c".into(),
                "echo warmup; echo fake listening on 127.0.0.1:45678 ok; sleep 0.1".into(),
            ],
        };
        let shard = spawn_shard(&cmd, Duration::from_secs(5)).unwrap();
        assert_eq!(shard.addr, "127.0.0.1:45678".parse().unwrap());
        assert!(shard.pid > 0);
    }
}

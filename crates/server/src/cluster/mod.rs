//! The sharded cluster tier: M independent `xtree-server` daemons behind
//! one consistent-hash router with health-checked failover.
//!
//! The pieces, bottom-up:
//!
//! - [`ring`] — the seeded consistent-hash ring. The routing key is the
//!   embedding-cache key, so each shard's LRU holds exactly its slice of
//!   the key space and a roster change moves only ~`1/M` of the keys.
//! - [`health`] — the shared failure detector: a probe thread plus the
//!   router's own forward failures feed one weighted-strike ejection
//!   rule (timeouts strike at half the weight of disconnects); a
//!   restarted shard readmits via the same path.
//! - [`router`] — the XWIRE1 front door that forwards compute requests
//!   to their owning shard and *replays* them (re-hash, re-dispatch,
//!   backoff) when a shard dies mid-flight. Replay is safe because every
//!   compute request is a deterministic pure lookup.
//! - [`supervisor`] — process lifecycle for locally-spawned shards:
//!   readiness parsing, crash detection, restart-with-backoff on fresh
//!   ephemeral ports, cooperative drain.
//! - [`metrics`] — per-shard routed/failed/replayed counters and the
//!   failover-latency histogram, exported in the workspace's Prometheus
//!   and JSONL shapes.

pub mod health;
pub mod metrics;
pub mod ring;
pub mod router;
pub mod supervisor;

pub use health::{FailureKind, HealthMonitor, ShardSet};
pub use metrics::ClusterMetrics;
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
pub use supervisor::{spawn_shard, ShardChild, ShardCommand, Supervisor};

//! The daemon: acceptor, connection handlers, and the worker pool.
//!
//! Threading model: one acceptor thread blocks in `accept()`; each
//! connection gets a handler thread that owns its socket and does *only*
//! I/O; a fixed pool of worker threads does all embedding/simulation
//! compute. Handlers route `Embed`/`Simulate` through the bounded
//! [`BoundedQueue`] as jobs and answer `Health`/`Stats`/`Shutdown`
//! inline, so control requests keep working while the pool is saturated.
//! A full queue is an immediate `Overloaded` response — the daemon never
//! buffers unboundedly and never blocks a client on admission.
//!
//! Shutdown is graceful by construction: the flag stops new admissions,
//! closing the queue lets workers drain already-accepted jobs before
//! exiting, and a self-connect wakes the blocking `accept()` so the
//! acceptor can observe the flag and leave.

use crate::cache::EmbeddingCache;
use crate::chaos::{ChaosPlan, ChaosStream};
use crate::metrics::ServerMetrics;
use crate::queue::{BoundedQueue, PushError};
use crate::service::{deadline_reject, handle_compute};
use crate::wire::{
    decode_request_host, read_frame, write_response, HealthInfo, Request, Response, WireError,
    ERR_BAD_REQUEST, ERR_SHUTTING_DOWN,
};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xtree_host::HOST_XTREE;

/// How a daemon is shaped: where it listens and how much it admits.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Compute threads in the worker pool (≥ 1).
    pub workers: usize,
    /// Bounded job-queue capacity (≥ 1); beyond it requests bounce with
    /// `Overloaded`.
    pub queue_cap: usize,
    /// Total embedding-cache capacity; 0 disables caching.
    pub cache_cap: usize,
    /// `SO_RCVTIMEO`/`SO_SNDTIMEO` for every connection: a peer that
    /// stalls longer than this mid-frame is dropped instead of wedging
    /// its handler thread forever. `None` (the default) keeps the
    /// pre-deadline unbounded blocking behavior.
    pub io_timeout: Option<Duration>,
    /// Seeded fault injection on every accepted connection; `None` (the
    /// default) serves raw sockets.
    pub chaos: Option<ChaosPlan>,
    /// Host topology served to requests that don't carry the wire host
    /// field (`xtree_host::HOST_XTREE` by default — old clients keep the
    /// old behavior). A frame's own host field always wins.
    pub default_host: u8,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 256,
            io_timeout: None,
            chaos: None,
            default_host: HOST_XTREE,
        }
    }
}

/// One pooled request: what to compute, where to send the answer, and
/// how long anyone still cares.
struct Job {
    req: Request,
    /// Resolved host tag: the frame's trailing host field, or the
    /// server's `default_host` when the client sent none.
    host: u8,
    reply: mpsc::Sender<Response>,
    /// The absolute instant after which the client's budget is spent and
    /// the answer is worthless.
    deadline: Option<Instant>,
}

/// State shared by the acceptor, every handler, and every worker.
struct Shared {
    queue: BoundedQueue<Job>,
    cache: EmbeddingCache,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    /// When the daemon came up — `Health` reports whole seconds since.
    started: Instant,
    io_timeout: Option<Duration>,
    default_host: u8,
}

/// A running daemon. Dropping the handle does not stop it — send a
/// `Shutdown` request (or call [`Server::shutdown`]) and then
/// [`Server::wait`].
pub struct Server {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker pool.
    ///
    /// # Errors
    /// Propagates the bind failure (address in use, permission, …).
    pub fn spawn(config: &ServerConfig) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_cap.max(1)),
            cache: EmbeddingCache::new(config.cache_cap),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            io_timeout: config.io_timeout,
            default_host: config.default_host,
        });

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xtree-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let chaos = config.chaos.filter(|p| !p.profile.is_off());
            std::thread::Builder::new()
                .name("xtree-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, chaos))
                .expect("spawn acceptor")
        };

        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port picked).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Requests bounced with `Overloaded` so far.
    pub fn overloaded(&self) -> u64 {
        self.shared.metrics.overloaded()
    }

    /// Prometheus exposition of the server metrics at this instant.
    pub fn prometheus(&self) -> String {
        self.shared
            .metrics
            .to_prometheus(&self.shared.cache, self.shared.queue.len())
    }

    /// JSONL export of the server metrics at this instant.
    pub fn jsonl(&self) -> String {
        self.shared
            .metrics
            .to_jsonl(&self.shared.cache, self.shared.queue.len())
    }

    /// Initiates the same graceful drain a wire `Shutdown` request does.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the acceptor and every worker have exited — i.e.
    /// until a shutdown has been requested *and* accepted work drained.
    /// Idempotent; metrics remain readable afterwards.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Flips the flag, closes the queue (drain point), and self-connects to
/// kick the acceptor out of `accept()`.
fn begin_shutdown(shared: &Shared, addr: std::net::SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    shared.queue.close();
    // The acceptor blocks in accept(); a throwaway connection wakes it so
    // it can observe the flag. Failure is fine — it means the listener is
    // already gone.
    let _ = TcpStream::connect(addr);
}

fn worker_loop(shared: &Shared) {
    // Deadline-expired jobs are answered with the typed rejection on the
    // way past instead of burning compute on an answer nobody awaits.
    while let Some(job) = shared.queue.pop_filtered(
        |job| job.deadline.is_none_or(|d| Instant::now() < d),
        |job| {
            shared.metrics.count_deadline_reject();
            shared.metrics.count_error();
            let _ = job.reply.send(deadline_reject("queue"));
        },
    ) {
        let resp = handle_compute(&job.req, job.host, &shared.cache, &shared.metrics);
        if matches!(resp, Response::Error { .. }) {
            shared.metrics.count_error();
        }
        // A dead reply channel means the client hung up; drop the result.
        let _ = job.reply.send(resp);
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>, chaos: Option<ChaosPlan>) {
    // Accepted connections number from 0; under chaos each index derives
    // its own fault stream from the plan.
    let conn_counter = AtomicU64::new(0);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) during drain
        }
        let conn_id = conn_counter.fetch_add(1, Ordering::Relaxed);
        let stream = ChaosStream::wrap(stream, chaos.as_ref().map(|p| p.conn(conn_id)));
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().ok();
        // Handlers are detached: they die with their connection (EOF /
        // error) or with the process. wait() only joins compute threads.
        let _ = std::thread::Builder::new()
            .name("xtree-conn".into())
            .spawn(move || {
                let local = addr.unwrap_or_else(|| "0.0.0.0:0".parse().expect("literal addr"));
                handle_connection(stream, &shared, local);
            });
    }
}

/// The response a malformed frame or payload earns before the connection
/// is dropped (framing cannot be trusted past the first bad byte).
fn wire_reject(e: &WireError) -> Response {
    Response::Error {
        code: ERR_BAD_REQUEST,
        message: format!("bad request: {e}"),
    }
}

/// Serves one connection until EOF, a wire error, an I/O timeout, or
/// shutdown.
fn handle_connection(stream: ChaosStream, shared: &Shared, local: std::net::SocketAddr) {
    // The socket-level budget: a peer that stalls longer than this
    // mid-frame (or between the bytes of one) is dropped, not waited on.
    if stream.set_read_timeout(shared.io_timeout).is_err()
        || stream.set_write_timeout(shared.io_timeout).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let (req, deadline_us, host) = match read_frame(&mut reader) {
            Ok(Some(bytes)) => match decode_request_host(&bytes) {
                Ok(decoded) => decoded,
                Err(e) => {
                    shared.metrics.count_request();
                    shared.metrics.count_error();
                    let _ = write_response(&mut writer, &wire_reject(&e));
                    return; // framing is lost after a bad payload
                }
            },
            Ok(None) => return, // clean EOF between frames
            Err(WireError::TimedOut) => {
                // Idle or stalled peer outran the I/O budget: close
                // silently — there is no frame to answer.
                shared.metrics.count_io_timeout();
                return;
            }
            Err(WireError::Io(_)) => return,
            Err(e) => {
                shared.metrics.count_request();
                shared.metrics.count_error();
                let _ = write_response(&mut writer, &wire_reject(&e));
                return;
            }
        };
        shared.metrics.count_request();
        // The budget field is the client's *remaining* time at send
        // time; receipt time is the closest clock-free approximation of
        // when it started ticking here.
        let deadline = deadline_us.map(|us| Instant::now() + Duration::from_micros(us));
        let host = host.unwrap_or(shared.default_host);
        let resp = match req {
            Request::Health => {
                shared.metrics.count_health();
                // The liveness probe doubles as a load signal: queue
                // depth, cache totals, and uptime ride along as the
                // protocol's optional trailing fields.
                Response::HealthOk {
                    info: Some(HealthInfo {
                        queue_depth: shared.queue.len() as u64,
                        cache_hits: shared.cache.hits(),
                        cache_misses: shared.cache.misses(),
                        uptime_s: shared.started.elapsed().as_secs(),
                    }),
                }
            }
            Request::Stats => {
                shared.metrics.count_stats();
                Response::StatsOk(shared.metrics.snapshot(&shared.cache, shared.queue.len()))
            }
            Request::Shutdown => {
                let pending = shared.queue.len() as u64;
                begin_shutdown(shared, local);
                Response::ShutdownOk { pending }
            }
            Request::Embed { .. } | Request::Simulate { .. } => {
                if matches!(req, Request::Embed { .. }) {
                    shared.metrics.count_embed();
                } else {
                    shared.metrics.count_simulate();
                }
                dispatch(shared, req, host, deadline)
            }
        };
        // A budgeted response gets the remaining budget as its write
        // timeout (a dead-slow reader cannot hold the handler past the
        // client's own patience); budget-free traffic keeps io_timeout.
        if let Some(d) = deadline {
            let remaining = d
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            let budget = shared.io_timeout.map_or(remaining, |io| io.min(remaining));
            let _ = writer.set_write_timeout(Some(budget));
        }
        let wrote = write_response(&mut writer, &resp);
        if deadline.is_some() {
            let _ = writer.set_write_timeout(shared.io_timeout);
        }
        if wrote.is_err() {
            if matches!(wrote, Err(WireError::TimedOut)) {
                shared.metrics.count_io_timeout();
            }
            return;
        }
        if matches!(resp, Response::ShutdownOk { .. }) {
            return;
        }
    }
}

/// Admits one compute request to the pool and blocks (I/O thread only)
/// until its reply arrives or the request's deadline budget runs out.
fn dispatch(shared: &Shared, req: Request, host: u8, deadline: Option<Instant>) -> Response {
    let start = Instant::now();
    // Reject already-expired work before it costs a queue slot.
    if deadline.is_some_and(|d| start >= d) {
        shared.metrics.count_deadline_reject();
        shared.metrics.count_error();
        return deadline_reject("admission");
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        req,
        host,
        reply: reply_tx,
        deadline,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.metrics.observe_queue_depth(depth as u64);
        }
        Err(PushError::Full(_)) => {
            shared.metrics.count_overloaded();
            return Response::Overloaded {
                depth: shared.queue.len() as u64,
                cap: shared.queue.capacity() as u64,
            };
        }
        Err(PushError::Closed(_)) => {
            shared.metrics.count_error();
            return Response::Error {
                code: ERR_SHUTTING_DOWN,
                message: "server is draining".into(),
            };
        }
    }
    // recv fails only if the worker died with the job; surface it as a
    // typed error instead of hanging the connection. A budgeted request
    // waits at most its remaining budget — the typed rejection replaces
    // what used to be an unbounded block.
    let resp = match deadline {
        None => reply_rx.recv().ok(),
        Some(d) => match reply_rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
            Ok(resp) => Some(resp),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                shared.metrics.count_deadline_reject();
                shared.metrics.count_error();
                // The worker (or the queue filter) will find a dead
                // reply channel and drop its late answer.
                Some(deadline_reject("compute"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => None,
        },
    };
    let resp = resp.unwrap_or(Response::Error {
        code: crate::wire::ERR_INTERNAL,
        message: "worker dropped the request".into(),
    });
    shared
        .metrics
        .observe_latency_us(start.elapsed().as_micros() as u64);
    resp
}

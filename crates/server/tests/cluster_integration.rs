//! End-to-end cluster tests over real sockets: a consistent-hash router
//! in front of in-process shard daemons, byte-agreement with a
//! single-server reference, shard death under concurrent load with
//! nothing lost, typed terminal errors once the whole roster is dead,
//! and the client's own reconnect-after-restart loop.
//!
//! "Byte-agreement" is modulo one bit: the response's `cached` flag
//! reports which *shard's* LRU answered, so it legitimately differs
//! between a sharded cluster and the single reference server. The
//! [`normalized`] helper zeroes it before encoding both sides.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use xtree_server::cluster::{Router, RouterConfig};
use xtree_server::{
    Client, ReconnectPolicy, Request, Response, Server, ServerConfig, WireError, ERR_UNREACHABLE,
};
use xtree_sim::Backoff;

const FAMILY: u8 = 4; // random-bst
const NODES: u64 = 496;

fn embed_req(seed: u64) -> Request {
    Request::Embed {
        family: FAMILY,
        nodes: NODES,
        seed,
        theorem: 1,
    }
}

fn simulate_req(seed: u64) -> Request {
    Request::Simulate {
        family: FAMILY,
        nodes: NODES,
        seed,
        theorem: 1,
        workload: 0, // broadcast only: keeps the load phase fast
    }
}

fn shard_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 32,
        cache_cap: 64,
        io_timeout: None,
        chaos: None,
        ..ServerConfig::default()
    }
}

/// A router over `shards` with test-speed failover knobs: fast probes,
/// two-strike ejection, tight replay backoff.
fn router_config(shards: &[&Server]) -> RouterConfig {
    RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: shards.iter().map(|s| s.local_addr()).collect(),
        ring_seed: 1991,
        vnodes: 64,
        probe_interval: Duration::from_millis(20),
        fail_after: 2,
        replay: ReconnectPolicy {
            max_retries: 10,
            backoff: Backoff::Fixed(10),
        },
    }
}

/// Zeroes the cache-provenance bit so cluster and reference responses
/// can be compared byte-for-byte.
fn normalized(mut resp: Response) -> Response {
    match &mut resp {
        Response::EmbedOk { cached, .. } | Response::SimulateOk { cached, .. } => *cached = false,
        _ => {}
    }
    resp
}

/// The encoded bytes of a normalized response — the agreement currency.
fn wire_bytes(resp: Response) -> Vec<u8> {
    let mut buf = Vec::new();
    xtree_server::wire::encode_response(&normalized(resp), &mut buf);
    buf
}

#[test]
fn router_agrees_with_single_server_reference_byte_for_byte() {
    let mut shards: Vec<Server> = (0..3)
        .map(|_| Server::spawn(&shard_config()).unwrap())
        .collect();
    let mut router = Router::spawn(&router_config(&shards.iter().collect::<Vec<_>>())).unwrap();
    let mut reference = Server::spawn(&shard_config()).unwrap();

    let mut via_router = Client::connect(router.local_addr()).unwrap();
    let mut direct = Client::connect(reference.local_addr()).unwrap();
    for seed in 0..24 {
        let a = via_router.call(&embed_req(seed)).unwrap();
        let b = direct.call(&embed_req(seed)).unwrap();
        assert!(matches!(a, Response::EmbedOk { .. }), "seed {seed}: {a:?}");
        assert_eq!(
            wire_bytes(a),
            wire_bytes(b),
            "embed disagreement at seed {seed}"
        );
        let a = via_router.call(&simulate_req(seed)).unwrap();
        let b = direct.call(&simulate_req(seed)).unwrap();
        assert_eq!(
            wire_bytes(a),
            wire_bytes(b),
            "simulate disagreement at seed {seed}"
        );
    }

    // The router's Health carries its own load signal (dead-shard count
    // in queue_depth), and Stats aggregates across the roster.
    let health = via_router.call(&Request::Health).unwrap();
    let Response::HealthOk { info } = health else {
        panic!("expected HealthOk, got {health:?}");
    };
    assert_eq!(info.expect("router health has info").queue_depth, 0);
    let stats = via_router.call(&Request::Stats).unwrap();
    let Response::StatsOk(stats) = stats else {
        panic!("expected StatsOk, got {stats:?}");
    };
    assert_eq!(
        stats.embeds + stats.simulates,
        48,
        "aggregate stats must see all forwarded compute: {stats:?}"
    );

    let resp = via_router.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::ShutdownOk { .. }));
    router.wait();
    for s in &mut shards {
        s.wait(); // the router's cluster-wide drain shut them down
    }
    let mut c = Client::connect(reference.local_addr()).unwrap();
    c.call(&Request::Shutdown).unwrap();
    reference.wait();
}

#[test]
fn shard_death_under_load_loses_and_corrupts_nothing() {
    let shards: Vec<Server> = (0..3)
        .map(|_| Server::spawn(&shard_config()).unwrap())
        .collect();
    let mut router = Router::spawn(&router_config(&shards.iter().collect::<Vec<_>>())).unwrap();
    let metrics = router.metrics();
    let shard_set = router.shard_set();
    let router_addr = router.local_addr();

    // Single-threaded reference answers for every key in the run.
    let mut reference = Server::spawn(&shard_config()).unwrap();
    let mut direct = Client::connect(reference.local_addr()).unwrap();
    let expected: Vec<Vec<u8>> = (0..48)
        .map(|seed| wire_bytes(direct.call(&embed_req(seed)).unwrap()))
        .collect();

    // Four clients sweep the key space through the router; after the
    // first quarter of requests, shard 0 is killed mid-load (its listener
    // closes and every cached connection resets).
    let killed = AtomicBool::new(false);
    let victim = &shards[0];
    let answers: Vec<(u64, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let killed = &killed;
                scope.spawn(move || {
                    let mut c = Client::connect(router_addr).unwrap();
                    let mut got = Vec::new();
                    for i in 0..12u64 {
                        let seed = t * 12 + i;
                        if t == 0 && i == 3 && !killed.swap(true, Ordering::SeqCst) {
                            victim.shutdown();
                        }
                        let resp = c.call(&embed_req(seed)).unwrap();
                        assert!(
                            matches!(resp, Response::EmbedOk { .. }),
                            "seed {seed} answered {resp:?} — a client saw the failover"
                        );
                        got.push((seed, wire_bytes(resp)));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Every request was answered exactly once, byte-identical to the
    // reference — replay neither lost nor duplicated anything.
    assert_eq!(answers.len(), 48);
    for (seed, bytes) in &answers {
        assert_eq!(
            bytes, &expected[*seed as usize],
            "response for seed {seed} diverged from the reference"
        );
    }
    // The detector observed the death (via probes, forwards, or both).
    assert_eq!(shard_set.live_count(), 2, "shard 0 must be ejected");
    assert!(
        metrics.failed_total() >= 1,
        "the router must have seen the dead shard's transport failures"
    );
    assert_eq!(metrics.unreachable_total(), 0);
    assert_eq!(metrics.exhausted_total(), 0);

    let mut c = Client::connect(router_addr).unwrap();
    c.call(&Request::Shutdown).unwrap();
    router.wait();
    for mut s in shards {
        s.wait();
    }
    direct.call(&Request::Shutdown).unwrap();
    reference.wait();
}

#[test]
fn all_shards_dead_yields_typed_unreachable() {
    let shard = Server::spawn(&shard_config()).unwrap();
    let config = RouterConfig {
        replay: ReconnectPolicy {
            max_retries: 2,
            backoff: Backoff::Fixed(5),
        },
        ..router_config(&[&shard])
    };
    let mut router = Router::spawn(&config).unwrap();
    let shard_set = router.shard_set();

    // Kill the only shard and wait for the detector to eject it.
    shard.shutdown();
    let mut shard = shard;
    shard.wait();
    for _ in 0..100 {
        if shard_set.live_count() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(shard_set.live_count(), 0, "probe loop must eject the shard");

    let mut c = Client::connect(router.local_addr()).unwrap();
    let resp = c.call(&embed_req(1)).unwrap();
    let Response::Error { code, .. } = resp else {
        panic!("expected a typed error, got {resp:?}");
    };
    assert_eq!(code, ERR_UNREACHABLE, "dead roster must answer Unreachable");

    router.shutdown();
    router.wait();
}

#[test]
fn client_reconnects_across_a_server_restart() {
    let mut first = Server::spawn(&shard_config()).unwrap();
    let addr = first.local_addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.call(&embed_req(7)).unwrap(),
        Response::EmbedOk { .. }
    ));

    // Kill the peer over the wire — the handler closes our connection
    // after acknowledging — then bring a replacement up on the same
    // address (the listener socket is closed, so the port is immediately
    // rebindable).
    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::ShutdownOk { .. }
    ));
    first.wait();
    let mut second = Server::spawn(&ServerConfig {
        addr: addr.to_string(),
        ..shard_config()
    })
    .expect("rebind the freed port");

    // A plain call sees a typed transport error...
    let err = client.call(&embed_req(7)).unwrap_err();
    assert!(err.is_transport(), "expected a transport class, got {err}");
    assert!(
        matches!(
            err,
            WireError::Closed | WireError::Reset | WireError::Refused
        ),
        "unexpected transport flavour: {err}"
    );
    // ...and the retrying call heals the connection and replays.
    let policy = ReconnectPolicy {
        max_retries: 5,
        backoff: Backoff::Fixed(20),
    };
    let resp = client.call_retrying(&embed_req(7), &policy).unwrap();
    assert!(matches!(resp, Response::EmbedOk { .. }), "{resp:?}");
    assert!(client.replays() >= 1, "the replay must be accounted");

    client.call(&Request::Shutdown).unwrap();
    second.wait();
}

//! End-to-end daemon tests over real sockets: concurrent clients against
//! an ephemeral-port server, cache behaviour under contention, explicit
//! backpressure at queue saturation, malformed-byte robustness, and the
//! graceful shutdown drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use xtree_server::{Client, Request, Response, Server, ServerConfig, WireError, WORKLOAD_ALL};

fn config(workers: usize, queue_cap: usize, cache_cap: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        cache_cap,
        io_timeout: None,
        chaos: None,
        ..ServerConfig::default()
    }
}

/// The key every concurrency test hammers: one (family, nodes, seed,
/// theorem) identity, so all worker threads contend on one cache entry.
const FAMILY: u8 = 4; // random-bst
const NODES: u64 = 496;
const SEED: u64 = 11;

fn embed_req() -> Request {
    Request::Embed {
        family: FAMILY,
        nodes: NODES,
        seed: SEED,
        theorem: 1,
    }
}

fn simulate_req() -> Request {
    Request::Simulate {
        family: FAMILY,
        nodes: NODES,
        seed: SEED,
        theorem: 1,
        workload: WORKLOAD_ALL,
    }
}

#[test]
fn concurrent_clients_share_the_cache_and_agree() {
    let mut server = Server::spawn(&config(2, 16, 8)).expect("bind");
    let addr = server.local_addr();

    // The single-threaded reference answers, straight through one client.
    let mut reference = Client::connect(addr).unwrap();
    let ref_embed = reference.call(&embed_req()).unwrap();
    let Response::EmbedOk {
        height,
        dilation,
        max_load,
        ..
    } = ref_embed
    else {
        panic!("expected EmbedOk, got {ref_embed:?}");
    };
    assert!(dilation <= 3, "Theorem 1 bound");
    assert_eq!(max_load, 16, "Theorem 1 bound");
    let ref_sim = reference.call(&simulate_req()).unwrap();
    let Response::SimulateOk {
        reports: ref_reports,
        ..
    } = ref_sim
    else {
        panic!("expected SimulateOk");
    };
    assert_eq!(ref_reports.len(), 4);

    // Four client threads fire Embed + Simulate for the same key.
    let results: Vec<(Response, Response)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let e = c.call(&embed_req()).unwrap();
                    let s = c.call(&simulate_req()).unwrap();
                    (e, s)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (e, s) in &results {
        // Every concurrent embed reports the same construction...
        let Response::EmbedOk {
            height: h,
            dilation: d,
            max_load: l,
            ..
        } = e
        else {
            panic!("expected EmbedOk, got {e:?}");
        };
        assert_eq!((*h, *d, *l), (height, dilation, max_load));
        // ...and every simulation matches the single-threaded reports.
        let Response::SimulateOk { reports, .. } = s else {
            panic!("expected SimulateOk, got {s:?}");
        };
        assert_eq!(reports, &ref_reports, "concurrency must not change results");
    }

    // 10 pooled requests for one key: at most the racing cold builds miss.
    let stats = reference.call(&Request::Stats).unwrap();
    let Response::StatsOk(stats) = stats else {
        panic!("expected StatsOk");
    };
    assert_eq!(stats.embeds + stats.simulates, 10);
    assert!(
        stats.cache_hits >= 6,
        "expected most lookups to hit one shared entry, got {stats:?}"
    );
    assert!(stats.cache_entries >= 1);
    // 10 pooled requests plus the Stats request itself (counted before
    // the snapshot is taken).
    assert_eq!(stats.requests, 11);

    let resp = reference.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::ShutdownOk { .. }));
    server.wait();
}

#[test]
fn saturated_queue_answers_overloaded_not_hangs() {
    // One worker, queue of one: a burst of slow simulates from many
    // connections must bounce some requests immediately.
    let mut server = Server::spawn(&config(1, 1, 8)).expect("bind");
    let addr = server.local_addr();

    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    // Distinct seeds so nothing is served from cache.
                    c.call(&Request::Simulate {
                        family: FAMILY,
                        nodes: 2032,
                        seed: 100 + i,
                        theorem: 1,
                        workload: WORKLOAD_ALL,
                    })
                    .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = responses
        .iter()
        .filter(|r| matches!(r, Response::SimulateOk { .. }))
        .count();
    let overloaded = responses
        .iter()
        .filter(|r| matches!(r, Response::Overloaded { .. }))
        .count();
    assert_eq!(
        ok + overloaded,
        8,
        "only Ok/Overloaded expected: {responses:?}"
    );
    assert!(ok >= 1, "some requests must be served");
    assert_eq!(server.overloaded(), overloaded as u64);

    let mut c = Client::connect(addr).unwrap();
    c.call(&Request::Shutdown).unwrap();
    server.wait();
}

#[test]
fn garbage_bytes_get_a_typed_error_and_valid_clients_continue() {
    let mut server = Server::spawn(&config(1, 4, 4)).expect("bind");
    let addr = server.local_addr();

    // A liar: correct magic, then junk. The server must answer with a
    // typed Error frame and close — not crash, not hang.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"XWIRE1\n\x05hello").unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap(); // server closes after replying
    assert!(!buf.is_empty(), "expected an error response before close");
    let mut cursor = &buf[..];
    let frame = xtree_server::wire::read_frame(&mut cursor)
        .unwrap()
        .expect("one response frame");
    let resp = xtree_server::wire::decode_response(&frame).unwrap();
    assert!(
        matches!(resp, Response::Error { code: 1, .. }),
        "expected bad-request error, got {resp:?}"
    );

    // And a total liar: no magic at all.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();

    // The daemon is still healthy for honest clients.
    let mut c = Client::connect(addr).unwrap();
    let health = c.call(&Request::Health).unwrap();
    let Response::HealthOk { info } = health else {
        panic!("expected HealthOk, got {health:?}");
    };
    assert!(
        info.is_some_and(|i| i.queue_depth == 0),
        "health must carry the load signals: {info:?}"
    );
    c.call(&Request::Shutdown).unwrap();
    server.wait();
}

#[test]
fn shutdown_drains_queued_work_and_refuses_new() {
    let mut server = Server::spawn(&config(1, 16, 8)).expect("bind");
    let addr = server.local_addr();

    // Fill the queue with slow work from background connections, then
    // shut down while they are in flight: every accepted request must
    // still get a real answer.
    let results: Vec<Response> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.call(&Request::Simulate {
                        family: FAMILY,
                        nodes: 2032,
                        seed: 500 + i,
                        theorem: 1,
                        workload: WORKLOAD_ALL,
                    })
                    .unwrap()
                })
            })
            .collect();
        // Give the burst a moment to enqueue, then pull the plug.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut c = Client::connect(addr).unwrap();
        let resp = c.call(&Request::Shutdown).unwrap();
        assert!(matches!(resp, Response::ShutdownOk { .. }));
        workers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Accepted requests drained to real responses (no hangs, no drops).
    for r in &results {
        assert!(
            matches!(
                r,
                Response::SimulateOk { .. } | Response::Overloaded { .. } | Response::Error { .. }
            ),
            "unexpected response during drain: {r:?}"
        );
    }
    assert!(
        results
            .iter()
            .any(|r| matches!(r, Response::SimulateOk { .. })),
        "at least the in-flight request must complete"
    );
    server.wait();

    // The listener is gone after the drain.
    assert!(
        Client::connect(addr)
            .map(|mut c| c.call(&Request::Health))
            .map_or(true, |r| matches!(
                r,
                Err(WireError::Closed | WireError::Io(_))
            )),
        "post-shutdown connections must fail"
    );
}

#[test]
fn deadline_budgets_succeed_generous_and_fail_typed_when_spent() {
    use std::time::Duration;

    let mut server = Server::spawn(&config(2, 16, 16)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A generous budget rides the trailing field end to end and the
    // request completes normally.
    let resp = client
        .call_deadline(&embed_req(), Some(Duration::from_secs(10)))
        .unwrap();
    assert!(matches!(resp, Response::EmbedOk { .. }));

    // A spent budget fails fast and typed — locally, before the frame
    // ever reaches the wire.
    let err = client
        .call_deadline(&embed_req(), Some(Duration::ZERO))
        .unwrap_err();
    assert!(
        matches!(err, WireError::TimedOut),
        "spent budget must be TimedOut, got {err}"
    );

    // The connection survives the local rejection: budget-free calls on
    // the same client still work (timeouts were restored to blocking).
    let resp = client.call(&embed_req()).unwrap();
    assert!(matches!(resp, Response::EmbedOk { .. }));

    client.call(&Request::Shutdown).unwrap();
    server.wait();
}

//! Property tests pinning the consistent-hash ring's two contracts:
//!
//! 1. **Seeded determinism** — placement is a pure function of
//!    `(seed, vnodes)` and the member *set*; insertion order, rebuilds,
//!    and lookup-time dead-shard filtering must never change a route.
//! 2. **Stability** — a roster change moves only the keys it must: when
//!    a shard leaves, exactly the keys it owned move (everyone else's
//!    routes are untouched), and when a shard joins, keys move only *to*
//!    the newcomer. With 64 virtual nodes the moved fraction stays near
//!    the ideal `1/M`.

use proptest::prelude::*;
use xtree_server::cluster::HashRing;
use xtree_server::EmbeddingKey;

/// A pool of distinct request keys derived from one generator seed —
/// deterministic, spanning families/sizes/theorems like real traffic.
fn keys(pool_seed: u64, count: u64) -> Vec<EmbeddingKey> {
    (0..count)
        .map(|i| {
            let x = pool_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i);
            EmbeddingKey {
                family: (x % 8) as u8,
                nodes: 496 + (x >> 3) % 4096,
                seed: x,
                theorem: 1 + (x % 2) as u8,
                host: ((x >> 5) % 3) as u8,
            }
        })
        .collect()
}

proptest! {
    // Same seed + same member set ⇒ same routes, regardless of the order
    // shards were added or how often the ring was rebuilt.
    #[test]
    fn placement_is_a_pure_function_of_seed_and_member_set(
        seed in any::<u64>(),
        vnodes in 1u32..128,
        shards in 1u16..12,
        order in any::<u64>(),
        pool in any::<u64>(),
    ) {
        let forward = HashRing::with_shards(seed, vnodes, shards);
        let mut shuffled = HashRing::new(seed, vnodes);
        let mut ids: Vec<u16> = (0..shards).collect();
        // A seeded Fisher–Yates-ish shuffle from the raw entropy.
        for i in (1..ids.len()).rev() {
            ids.swap(i, (order as usize).wrapping_mul(i) % (i + 1));
        }
        for id in ids {
            shuffled.add_shard(id);
        }
        for k in keys(pool, 64) {
            prop_assert_eq!(
                forward.route_key(&k, |_| true),
                shuffled.route_key(&k, |_| true)
            );
        }
    }

    // Different ring seeds place the key space differently (vacuously
    // true per-key sometimes, so assert over a population).
    #[test]
    fn distinct_seeds_shuffle_placement(seed in any::<u64>(), pool in any::<u64>()) {
        let a = HashRing::with_shards(seed, 64, 8);
        let b = HashRing::with_shards(seed ^ 0xDEAD_BEEF, 64, 8);
        let ks = keys(pool, 256);
        let moved = ks
            .iter()
            .filter(|k| a.route_key(k, |_| true) != b.route_key(k, |_| true))
            .count();
        // With 8 shards, ~7/8 of keys should land elsewhere under an
        // independent placement; even a very lax bound catches a seed
        // that is silently ignored (moved == 0).
        prop_assert!(moved > ks.len() / 4, "only {moved}/{} keys moved", ks.len());
    }

    // Removing one shard relocates exactly the keys it owned: every key
    // owned by a survivor keeps its route. This is the consistent-hashing
    // contract that makes failover cheap — survivors' caches stay warm.
    #[test]
    fn removal_moves_only_the_departed_shards_keys(
        seed in any::<u64>(),
        shards in 2u16..10,
        victim_sel in any::<u16>(),
        pool in any::<u64>(),
    ) {
        let victim = victim_sel % shards;
        let full = HashRing::with_shards(seed, 64, shards);
        let mut reduced = full.clone();
        reduced.remove_shard(victim);
        let ks = keys(pool, 512);
        let mut moved = 0usize;
        for k in &ks {
            let before = full.route_key(k, |_| true).expect("nonempty ring");
            let after = reduced.route_key(k, |_| true).expect("nonempty ring");
            if before == victim {
                moved += 1;
                prop_assert_ne!(after, victim);
            } else {
                prop_assert_eq!(before, after);
            }
        }
        // Expected moved fraction is 1/M; with 64 vnodes the ownership
        // imbalance is a few percent, so 3/M is a generous ceiling that
        // still fails hard for mod-hashing (which moves ~all keys).
        let bound = (ks.len() * 3) / usize::from(shards) + 8;
        prop_assert!(moved <= bound, "{moved}/{} keys moved (bound {bound})", ks.len());
    }

    // Adding a shard steals keys only for itself: any key whose route
    // changed must now route to the newcomer.
    #[test]
    fn addition_moves_keys_only_to_the_newcomer(
        seed in any::<u64>(),
        shards in 1u16..10,
        pool in any::<u64>(),
    ) {
        let before = HashRing::with_shards(seed, 64, shards);
        let mut after = before.clone();
        after.add_shard(shards);
        for k in keys(pool, 256) {
            let old = before.route_key(&k, |_| true).expect("nonempty ring");
            let new = after.route_key(&k, |_| true).expect("nonempty ring");
            if new != old {
                prop_assert_eq!(new, shards);
            }
        }
    }

    // Lookup-time liveness filtering must equal point removal for any
    // dead subset — the equivalence the router's lock-free failover path
    // stands on.
    #[test]
    fn filtering_dead_equals_removing_them(
        seed in any::<u64>(),
        shards in 1u16..10,
        dead_mask in any::<u16>(),
        pool in any::<u64>(),
    ) {
        let full = HashRing::with_shards(seed, 64, shards);
        let mut reduced = full.clone();
        for id in 0..shards {
            if dead_mask & (1 << id) != 0 {
                reduced.remove_shard(id);
            }
        }
        let alive = |id: u16| dead_mask & (1 << id) == 0;
        for k in keys(pool, 128) {
            prop_assert_eq!(
                full.route_key(&k, alive),
                reduced.route_key(&k, |_| true)
            );
        }
    }
}

//! Property tests pinning the XWIRE1 codec: every representable message
//! survives encode → decode byte-identically (and re-encodes to the same
//! bytes), while truncated, corrupted, or oversized inputs come back as
//! typed [`WireError`]s — never panics, never garbage accepted silently.

use proptest::prelude::*;
use xtree_server::wire::{
    decode_request, decode_request_budget, decode_request_host, decode_response, encode_request,
    encode_request_budget, encode_request_host, encode_response, frame, read_frame, write_request,
    HealthInfo, MAGIC, MAX_PAYLOAD, NO_BUDGET,
};
use xtree_server::{Request, Response, WireError, WireReport, WireStats};

/// The `k`-th request shape, filled from raw field material.
fn request_from(k: u8, family: u8, nodes: u64, seed: u64, theorem: u8, workload: u8) -> Request {
    match k % 5 {
        0 => Request::Embed {
            family,
            nodes,
            seed,
            theorem,
        },
        1 => Request::Simulate {
            family,
            nodes,
            seed,
            theorem,
            workload,
        },
        2 => Request::Stats,
        3 => Request::Health,
        _ => Request::Shutdown,
    }
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u64>(),
        any::<u64>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(k, family, nodes, seed, theorem, workload)| {
            request_from(k, family, nodes, seed, theorem, workload)
        })
}

fn arb_report() -> impl Strategy<Value = WireReport> {
    (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(workload, cycles, ideal_cycles, max_link_traffic)| WireReport {
            workload,
            cycles,
            ideal_cycles,
            max_link_traffic,
        },
    )
}

fn stats_from(v: &[u64], partial: bool) -> WireStats {
    WireStats {
        requests: v[0],
        embeds: v[1],
        simulates: v[2],
        overloaded: v[3],
        errors: v[4],
        cache_hits: v[5],
        cache_misses: v[6],
        cache_entries: v[7],
        queue_depth: v[8],
        latency_count: v[9],
        latency_p50_us: v[10],
        latency_p95_us: v[11],
        latency_p99_us: v[12],
        sim_hops: v[13],
        sim_delivered: v[14],
        partial,
    }
}

/// The `k`-th response shape. `words` always holds 15 values; `msg` is
/// ASCII (any byte < 128 is valid UTF-8).
fn arb_response() -> impl Strategy<Value = Response> {
    (
        any::<u8>(),
        proptest::collection::vec(any::<u64>(), 15..16),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        proptest::collection::vec(0u8..128, 0..48),
        proptest::collection::vec(arb_report(), 0..6),
    )
        .prop_map(
            |(k, words, (injective, cached, partial), msg, reports)| match k % 7 {
                0 => Response::EmbedOk {
                    height: words[0] as u8,
                    dilation: words[1],
                    max_load: words[2],
                    congestion: words[3],
                    injective,
                    cached,
                },
                1 => Response::SimulateOk { cached, reports },
                2 => Response::StatsOk(stats_from(&words, partial)),
                // Both health shapes: bare (pre-cluster peers) and with
                // the trailing load fields.
                3 => Response::HealthOk {
                    info: cached.then(|| HealthInfo {
                        queue_depth: words[0],
                        cache_hits: words[1],
                        cache_misses: words[2],
                        uptime_s: words[3],
                    }),
                },
                4 => Response::ShutdownOk { pending: words[0] },
                5 => Response::Overloaded {
                    depth: words[0],
                    cap: words[1],
                },
                _ => Response::Error {
                    code: words[0] as u8,
                    message: String::from_utf8(msg).expect("ASCII bytes"),
                },
            },
        )
}

proptest! {
    #[test]
    fn request_round_trip_is_byte_identical(req in arb_request()) {
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let back = decode_request(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &req);
        let mut again = Vec::new();
        encode_request(&back, &mut again);
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn response_round_trip_is_byte_identical(resp in arb_response()) {
        let mut bytes = Vec::new();
        encode_response(&resp, &mut bytes);
        let back = decode_response(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &resp);
        let mut again = Vec::new();
        encode_response(&back, &mut again);
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn framed_request_survives_the_stream(req in arb_request()) {
        let mut payload = Vec::new();
        encode_request(&req, &mut payload);
        let framed = frame(&payload);
        let mut cursor = &framed[..];
        let got = read_frame(&mut cursor).unwrap().expect("one frame in");
        prop_assert_eq!(decode_request(&got).unwrap(), req);
        prop_assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after");
    }

    // The optional deadline budget is a trailing LEB128 word: with a
    // budget the pair round-trips byte-identically, and budgeted frames
    // are rejected (typed, never misread) by the strict legacy decoder.
    #[test]
    fn deadline_budget_round_trips(req in arb_request(), budget_us in any::<u64>()) {
        let mut bytes = Vec::new();
        encode_request_budget(&req, Some(budget_us), &mut bytes);
        let (back, got) = decode_request_budget(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(got, Some(budget_us));
        let mut again = Vec::new();
        encode_request_budget(&back, got, &mut again);
        prop_assert_eq!(again, bytes);
        // A pre-deadline decoder must refuse the extra field loudly.
        let strict = decode_request(&bytes);
        let refused = matches!(strict, Err(WireError::Trailing { .. }));
        prop_assert!(refused, "strict decoder accepted a budgeted frame: {:?}", strict);
    }

    // Backward compatibility, both directions: a budget-less encoding is
    // bit-for-bit the pre-deadline encoding, and every pre-deadline frame
    // decodes unchanged (with no budget) through the new decoder.
    #[test]
    fn budgetless_frames_are_bit_identical_to_legacy(req in arb_request()) {
        let mut legacy = Vec::new();
        encode_request(&req, &mut legacy);
        let mut budgetless = Vec::new();
        encode_request_budget(&req, None, &mut budgetless);
        prop_assert_eq!(&budgetless, &legacy);
        let (back, budget) = decode_request_budget(&legacy).expect("legacy frame must decode");
        prop_assert_eq!(back, req);
        prop_assert_eq!(budget, None);
    }

    // The optional host tag is a second trailing word behind the budget
    // slot: any (budget, host) pair round-trips byte-identically through
    // the host-aware codec, and host-tagged frames are rejected (typed,
    // never misread) by both older decoders.
    #[test]
    fn host_field_round_trips(
        req in arb_request(),
        has_budget in any::<bool>(),
        budget_word in 0..NO_BUDGET,
        host in any::<u8>(),
    ) {
        let budget_us = has_budget.then_some(budget_word);
        let mut bytes = Vec::new();
        encode_request_host(&req, budget_us, Some(host), &mut bytes);
        let (back, budget_back, host_back) =
            decode_request_host(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(budget_back, budget_us);
        prop_assert_eq!(host_back, Some(host));
        let mut again = Vec::new();
        encode_request_host(&back, budget_back, host_back, &mut again);
        prop_assert_eq!(again, bytes);
        // Both pre-host decoders must refuse the extra field loudly.
        let strict = decode_request(&bytes);
        prop_assert!(
            matches!(strict, Err(WireError::Trailing { .. })),
            "strict decoder accepted a host-tagged frame: {:?}", strict
        );
        let budget_only = decode_request_budget(&bytes);
        prop_assert!(
            matches!(budget_only, Err(WireError::Trailing { .. })),
            "budget-era decoder accepted a host-tagged frame: {:?}", budget_only
        );
    }

    // Backward compatibility, both directions: a host-free encoding is
    // bit-for-bit the budget-era encoding (which is itself bit-for-bit
    // legacy when the budget is also absent), and every pre-host frame
    // decodes unchanged (no host) through the new decoder.
    #[test]
    fn hostless_frames_are_bit_identical_to_legacy(
        req in arb_request(),
        has_budget in any::<bool>(),
        budget_word in any::<u64>(),
    ) {
        let budget_us = has_budget.then_some(budget_word);
        let mut old = Vec::new();
        encode_request_budget(&req, budget_us, &mut old);
        let mut new = Vec::new();
        encode_request_host(&req, budget_us, None, &mut new);
        prop_assert_eq!(&new, &old);
        let (back, budget_back, host_back) =
            decode_request_host(&old).expect("pre-host frame must decode");
        prop_assert_eq!(back, req);
        prop_assert_eq!(budget_back, budget_us);
        prop_assert_eq!(host_back, None);
    }

    // Bytes after the host word are a protocol violation: the lenient
    // decoder accepts at most two trailing words, never arbitrarily many.
    #[test]
    fn garbage_after_the_host_field_is_refused(
        req in arb_request(),
        host in any::<u8>(),
        junk in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = Vec::new();
        encode_request_host(&req, Some(1), Some(host), &mut bytes);
        bytes.extend_from_slice(&junk);
        let got = decode_request_host(&bytes);
        prop_assert!(
            matches!(got, Err(WireError::Trailing { .. } | WireError::BadField { .. })),
            "trailing garbage must be refused, got {:?}", got
        );
    }

    // Cutting an encoded message anywhere strictly inside it must yield a
    // typed error — or, if LEB128 field boundaries happen to align into a
    // shorter valid message, at least never the original one. No panics.
    #[test]
    fn truncated_payloads_error_or_differ(req in arb_request(), cut_sel in any::<usize>()) {
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let cut = cut_sel % bytes.len();
        match decode_request(&bytes[..cut]) {
            Err(
                WireError::Truncated
                | WireError::BadTag { .. }
                | WireError::Trailing { .. }
                | WireError::BadField { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {}", e),
            Ok(other) => prop_assert_ne!(other, req),
        }
    }

    // Same discipline for truncated frames read off a socket: the reader
    // reports a typed error, never panics, never parses a short frame.
    #[test]
    fn truncated_frames_error(req in arb_request(), cut_sel in any::<usize>()) {
        let mut payload = Vec::new();
        encode_request(&req, &mut payload);
        let framed = frame(&payload);
        let cut = cut_sel % framed.len();
        let mut cursor = &framed[..cut];
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "short frame must not parse"),
            Err(WireError::BadMagic) => prop_assert!(cut < MAGIC.len()),
            Err(WireError::Truncated | WireError::Io(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {}", e),
        }
    }

    // Single-bit corruption: decode must return a typed error or a
    // different (valid) message — silently-equal is the one forbidden
    // outcome, and panics are impossible.
    #[test]
    fn corrupted_bytes_never_panic(req in arb_request(), idx_sel in any::<usize>(), bit in 0u8..8) {
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let i = idx_sel % bytes.len();
        bytes[i] ^= 1 << bit;
        if let Ok(other) = decode_request(&bytes) {
            prop_assert_ne!(other, req);
        }
    }

    // Garbage of any shape: decoding must be total (no panics).
    #[test]
    fn garbage_decodes_totally(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let mut cursor = &bytes[..];
        let _ = read_frame(&mut cursor);
    }
}

#[test]
fn oversized_frame_declarations_are_refused() {
    let mut framed = Vec::from(&MAGIC[..]);
    // Declare MAX_PAYLOAD + 1 bytes; the reader must refuse before
    // allocating or reading that much.
    let mut n = MAX_PAYLOAD + 1;
    while n >= 0x80 {
        framed.push((n as u8 & 0x7f) | 0x80);
        n >>= 7;
    }
    framed.push(n as u8);
    let mut cursor = &framed[..];
    match read_frame(&mut cursor) {
        Err(WireError::TooLarge { len }) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn writer_and_reader_agree_over_a_buffer() {
    let reqs = [
        Request::Health,
        Request::Embed {
            family: 4,
            nodes: 1008,
            seed: 7,
            theorem: 1,
        },
        Request::Stats,
        Request::Shutdown,
    ];
    let mut buf = Vec::new();
    for req in &reqs {
        write_request(&mut buf, req).unwrap();
    }
    let mut cursor = &buf[..];
    for req in &reqs {
        let bytes = read_frame(&mut cursor).unwrap().expect("frame present");
        assert_eq!(&decode_request(&bytes).unwrap(), req);
    }
    assert!(read_frame(&mut cursor).unwrap().is_none());
}

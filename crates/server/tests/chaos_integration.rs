//! End-to-end fault injection: a loadgen-shaped drive through a
//! consistent-hash router whose shards serve every connection through
//! the seeded chaos transport. The contract under test is the
//! robustness tentpole's acceptance bar: the drive *completes* (a
//! watchdog bounds it — a hang is a failure, not a timeout), and every
//! single outcome is a typed one — success, `Overloaded`, a typed
//! `ERR_*` error, or a classified transport/corruption failure. Nothing
//! may come back unexplained, and nothing may wedge.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;
use xtree_server::{
    ChaosPlan, ChaosProfile, Client, ReconnectPolicy, Request, Response, Router, RouterConfig,
    Server, ServerConfig, ERR_BAD_REQUEST, ERR_DEADLINE, ERR_EXHAUSTED, ERR_SHUTTING_DOWN,
    ERR_UNREACHABLE,
};

const FAMILY: u8 = 4; // random-bst
const NODES: u64 = 496;

fn request_stream(conn: usize, count: usize) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let seed = 7000 + ((conn * 13 + i) % 5) as u64;
            if i % 3 == 0 {
                Request::Embed {
                    family: FAMILY,
                    nodes: NODES,
                    seed,
                    theorem: 1,
                }
            } else {
                Request::Simulate {
                    family: FAMILY,
                    nodes: NODES,
                    seed,
                    theorem: 1,
                    workload: (i % 4) as u8,
                }
            }
        })
        .collect()
}

/// Outcome buckets; `unclassified` is the one that must stay zero.
#[derive(Default, Debug)]
struct Outcomes {
    ok: usize,
    overloaded: usize,
    deadline: usize,
    unavailable: usize,
    transport: usize,
    corrupted: usize,
    unclassified: usize,
}

impl Outcomes {
    fn total(&self) -> usize {
        self.ok
            + self.overloaded
            + self.deadline
            + self.unavailable
            + self.transport
            + self.corrupted
            + self.unclassified
    }
}

/// The drive itself, run on a watchdogged thread: spawn the chaotic
/// cluster, push a fixed workload through it with budgeted retrying
/// clients, classify every outcome, drain, and return the buckets.
fn drive_chaotic_cluster(conns: usize, count: usize) -> Outcomes {
    let plan = ChaosPlan::new(0xBAD5EED, ChaosProfile::heavy());
    let shard_config = ServerConfig {
        workers: 2,
        queue_cap: 32,
        cache_cap: 64,
        chaos: Some(plan),
        ..ServerConfig::default()
    };
    let mut shards: Vec<Server> = (0..2)
        .map(|_| Server::spawn(&shard_config).expect("bind shard"))
        .collect();
    let mut router = Router::spawn(&RouterConfig {
        shards: shards.iter().map(Server::local_addr).collect(),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr();

    let results: Vec<Outcomes> = thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    let mut out = Outcomes::default();
                    // The router side of the wire is clean; the chaos
                    // lives between router and shards.
                    let mut client = Client::connect(addr).expect("connect to router");
                    let policy = ReconnectPolicy::default();
                    for req in request_stream(conn, count) {
                        let result = client.call_retrying_deadline(
                            &req,
                            &policy,
                            Some(Duration::from_secs(5)),
                        );
                        match result {
                            Ok(Response::EmbedOk { .. } | Response::SimulateOk { .. }) => {
                                out.ok += 1;
                            }
                            Ok(Response::Overloaded { .. }) => out.overloaded += 1,
                            Ok(Response::Error { code, .. }) if code == ERR_DEADLINE => {
                                out.deadline += 1;
                            }
                            Ok(Response::Error { code, .. })
                                if [ERR_UNREACHABLE, ERR_EXHAUSTED, ERR_SHUTTING_DOWN]
                                    .contains(&code) =>
                            {
                                out.unavailable += 1;
                            }
                            Ok(Response::Error { code, .. }) if code == ERR_BAD_REQUEST => {
                                // Shard chaos garbled our forwarded bytes
                                // and the bounce propagated; resync.
                                out.corrupted += 1;
                                while client.reconnect().is_err() {}
                            }
                            Ok(other) => {
                                out.unclassified += 1;
                                eprintln!("chaos drive: unexpected response {other:?}");
                            }
                            Err(e) if e.is_transport() => out.transport += 1,
                            Err(e) => {
                                out.unclassified += 1;
                                eprintln!("chaos drive: unexpected error {e}");
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Drain. Under shard chaos the Shutdown acknowledgement itself can be
    // eaten mid-frame, so tolerate a failed call and fall back to the
    // owned handles, which kill outright.
    if let Ok(mut client) = Client::connect(addr) {
        let _ = client.call_retrying(&Request::Shutdown, &ReconnectPolicy::default());
    }
    router.wait();
    for s in &mut shards {
        s.wait();
    }

    let mut total = Outcomes::default();
    for r in results {
        total.ok += r.ok;
        total.overloaded += r.overloaded;
        total.deadline += r.deadline;
        total.unavailable += r.unavailable;
        total.transport += r.transport;
        total.corrupted += r.corrupted;
        total.unclassified += r.unclassified;
    }
    total
}

#[test]
fn chaotic_cluster_degrades_into_typed_outcomes_only() {
    const CONNS: usize = 4;
    const COUNT: usize = 25;

    // Watchdog: the whole point of deadline budgets is that fault
    // injection can slow the serving path down but never wedge it. Run
    // the drive on its own thread and bound it with a recv timeout.
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        tx.send(drive_chaotic_cluster(CONNS, COUNT)).ok();
    });
    let out = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("chaotic drive must complete under the watchdog, never hang");

    assert_eq!(
        out.total(),
        CONNS * COUNT,
        "every request must be accounted for: {out:?}"
    );
    assert_eq!(out.unclassified, 0, "every failure must be typed: {out:?}");
    // The budgeted retrying client heals transient shard faults, so the
    // overwhelming majority must still succeed outright.
    assert!(
        out.ok >= CONNS * COUNT / 2,
        "chaos must degrade, not destroy: {out:?}"
    );
}

#[test]
fn spent_budgets_bounce_typed_at_every_hop() {
    // Through the router: a zero-microsecond budget is refused at
    // admission with ERR_DEADLINE before any shard work happens. The
    // budget is forged with the raw wire helpers because a live client
    // fails a spent budget locally (TimedOut) without touching the wire.
    use std::io::BufReader;
    use std::net::TcpStream;
    use xtree_server::wire::{decode_response, read_frame, write_request_budget};

    let shard_config = ServerConfig {
        workers: 1,
        queue_cap: 8,
        cache_cap: 16,
        ..ServerConfig::default()
    };
    let mut shard = Server::spawn(&shard_config).expect("bind shard");
    let mut router = Router::spawn(&RouterConfig {
        shards: vec![shard.local_addr()],
        ..RouterConfig::default()
    })
    .expect("bind router");

    for addr in [router.local_addr(), shard.local_addr()] {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let req = Request::Embed {
            family: FAMILY,
            nodes: NODES,
            seed: 7100,
            theorem: 1,
        };
        write_request_budget(&mut writer, &req, Some(0)).expect("write");
        let bytes = read_frame(&mut reader)
            .expect("read")
            .expect("a spent budget is answered, not hung up on");
        match decode_response(&bytes).expect("decode") {
            Response::Error { code, message } => {
                assert_eq!(code, ERR_DEADLINE, "typed deadline reject: {message}");
            }
            other => panic!("expected ERR_DEADLINE, got {other:?}"),
        }
    }

    let mut client = Client::connect(router.local_addr()).expect("connect");
    client.call(&Request::Shutdown).expect("shutdown");
    router.wait();
    shard.wait();
}

//! Live metrics: counters, per-edge utilization, and fixed-bucket
//! histograms, with JSONL and Prometheus text exporters.

use crate::counters::Counters;
use crate::event::Event;
use crate::hist::Histogram;
use crate::sink::Sink;
use xtree_json::Value;

/// Queue depth = messages that lost a link arbitration in one cycle.
const QUEUE_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// Message latency in batch-local cycles.
const LATENCY_BUCKETS: u32 = 17; // 1 … 65536, pow2
/// Hops carried by one directed edge over the run.
const EDGE_UTIL_BUCKETS: u32 = 17;

/// One JSONL histogram record — the shape every exporter in the workspace
/// emits (the simulation [`MetricsSink`] and the server's request metrics
/// alike): `{"type":"histogram","name":…,"count":…,"sum":…,"max":…,
/// "mean":…,"buckets":[{"le":…,"count":…},…]}` with `le: null` on the
/// overflow bucket.
pub fn histogram_jsonl(name: &str, h: &Histogram) -> Value {
    let buckets: Value = h
        .buckets()
        .map(|(le, count)| {
            Value::object()
                .with("le", le.map_or(Value::Null, Value::from))
                .with("count", count)
        })
        .collect();
    Value::object()
        .with("type", "histogram")
        .with("name", name)
        .with("count", h.count())
        .with("sum", h.sum())
        .with("max", h.max())
        .with("mean", h.mean())
        .with("buckets", buckets)
}

/// Appends one histogram in Prometheus text exposition (cumulative `le`
/// buckets, `_sum`, `_count`) under the fully-qualified `metric` name.
/// Shared by every Prometheus exporter in the workspace.
pub fn histogram_prometheus(out: &mut String, metric: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {metric} histogram\n"));
    let mut cumulative = 0u64;
    for (le, count) in h.buckets() {
        cumulative += count;
        let le = le.map_or("+Inf".to_string(), |b| b.to_string());
        out.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{metric}_sum {}\n", h.sum()));
    out.push_str(&format!("{metric}_count {}\n", h.count()));
}

/// A [`Sink`] that aggregates the event stream into exportable metrics.
///
/// Call [`finish`](MetricsSink::finish) once the run is over (it flushes
/// the last cycle's queue-depth sample), then export with
/// [`to_jsonl`](MetricsSink::to_jsonl) or
/// [`to_prometheus`](MetricsSink::to_prometheus).
#[derive(Clone, Debug)]
pub struct MetricsSink {
    counters: Counters,
    /// Hops per directed edge, grown on demand.
    edge_hops: Vec<u64>,
    /// Blocked messages per traffic-carrying cycle.
    queue_depth: Histogram,
    /// Delivery cycle (batch-local) per delivered message.
    latency: Histogram,
    /// The cycle currently being accumulated, if any.
    cur_cycle: Option<u64>,
    cur_blocked: u64,
    events: u64,
}

impl MetricsSink {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        MetricsSink {
            counters: Counters::default(),
            edge_hops: Vec::new(),
            queue_depth: Histogram::new(QUEUE_DEPTH_BOUNDS),
            latency: Histogram::pow2(LATENCY_BUCKETS),
            cur_cycle: None,
            cur_blocked: 0,
            events: 0,
        }
    }

    /// Total events observed.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// The aggregated counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Hops per directed edge index.
    pub fn edge_hops(&self) -> &[u64] {
        &self.edge_hops
    }

    /// The queue-depth histogram (one sample per cycle that carried or
    /// blocked traffic).
    pub fn queue_depth(&self) -> &Histogram {
        &self.queue_depth
    }

    /// The message-latency histogram (batch-local delivery cycles).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Flushes the cycle still being accumulated. Idempotent; call after
    /// the last batch and before exporting.
    pub fn finish(&mut self) {
        if self.cur_cycle.take().is_some() {
            self.queue_depth.observe(self.cur_blocked);
            self.cur_blocked = 0;
        }
    }

    /// The `k` busiest directed edges as `(edge, hops)`, busiest first
    /// (ties to the lower edge index).
    pub fn hottest_edges(&self, k: usize) -> Vec<(u32, u64)> {
        let mut edges: Vec<(u32, u64)> = self
            .edge_hops
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h > 0)
            .map(|(e, &h)| (e as u32, h))
            .collect();
        edges.sort_by_key(|&(e, h)| (std::cmp::Reverse(h), e));
        edges.truncate(k);
        edges
    }

    /// Histogram over per-edge hop totals (edges that carried traffic).
    pub fn edge_utilization(&self) -> Histogram {
        let mut h = Histogram::pow2(EDGE_UTIL_BUCKETS);
        for &hops in self.edge_hops.iter().filter(|&&h| h > 0) {
            h.observe(hops);
        }
        h
    }

    fn roll_cycle(&mut self, cycle: u64) {
        if self.cur_cycle != Some(cycle) {
            if self.cur_cycle.is_some() {
                self.queue_depth.observe(self.cur_blocked);
            }
            self.cur_cycle = Some(cycle);
            self.cur_blocked = 0;
        }
    }

    /// One JSON object per line: counters, then each histogram, then every
    /// edge that carried traffic.
    pub fn to_jsonl(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        let counters = Value::object()
            .with("type", "counters")
            .with("events", self.events)
            .with("batches", c.batches)
            .with("hops", c.hops)
            .with("contentions", c.contentions)
            .with("delivered", c.delivered)
            .with("faults_applied", c.faults_applied)
            .with("reroutes", c.reroutes)
            .with("idle_jumps", c.idle_jumps)
            .with("idle_cycles_skipped", c.idle_cycles_skipped)
            .with("recovery_attempts", c.recovery_attempts)
            .with("requeues", c.requeues)
            .with("repairs", c.repairs)
            .with("checkpoints", c.checkpoints);
        out.push_str(&xtree_json::to_string(&counters));
        out.push('\n');
        for (name, h) in [
            ("queue_depth", &self.queue_depth),
            ("message_latency_cycles", &self.latency),
            ("edge_utilization_hops", &self.edge_utilization()),
        ] {
            out.push_str(&xtree_json::to_string(&histogram_jsonl(name, h)));
            out.push('\n');
        }
        for (e, hops) in self
            .edge_hops
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h > 0)
            .map(|(e, &h)| (e, h))
        {
            let line = Value::object()
                .with("type", "edge")
                .with("edge", e)
                .with("hops", hops);
            out.push_str(&xtree_json::to_string(&line));
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition. Histograms use cumulative `le` buckets;
    /// per-edge series are capped to the 16 busiest edges (the full set is
    /// in the JSONL export and in the edge-utilization histogram).
    pub fn to_prometheus(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        for (name, v) in [
            ("batches", c.batches),
            ("hops", c.hops),
            ("contentions", c.contentions),
            ("delivered", c.delivered),
            ("faults_applied", c.faults_applied),
            ("reroutes", c.reroutes),
            ("idle_jumps", c.idle_jumps),
            ("idle_cycles_skipped", c.idle_cycles_skipped),
            ("recovery_attempts", c.recovery_attempts),
            ("requeues", c.requeues),
            ("repairs", c.repairs),
            ("checkpoints", c.checkpoints),
        ] {
            out.push_str(&format!(
                "# TYPE xtree_sim_{name}_total counter\nxtree_sim_{name}_total {v}\n"
            ));
        }
        for (name, h) in [
            ("queue_depth", &self.queue_depth),
            ("message_latency_cycles", &self.latency),
            ("edge_utilization_hops", &self.edge_utilization()),
        ] {
            histogram_prometheus(&mut out, &format!("xtree_sim_{name}"), h);
        }
        out.push_str("# TYPE xtree_sim_edge_hops_total counter\n");
        for (e, hops) in self.hottest_edges(16) {
            out.push_str(&format!(
                "xtree_sim_edge_hops_total{{edge=\"{e}\"}} {hops}\n"
            ));
        }
        out
    }
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink::new()
    }
}

impl Sink for MetricsSink {
    fn record(&mut self, ev: Event) {
        self.events += 1;
        match ev {
            Event::BatchStarted { .. } => {
                self.finish();
                self.counters.batches += 1;
            }
            Event::HopTaken { cycle, edge, .. } => {
                self.roll_cycle(cycle);
                self.counters.hops += 1;
                let e = edge as usize;
                if self.edge_hops.len() <= e {
                    self.edge_hops.resize(e + 1, 0);
                }
                self.edge_hops[e] += 1;
            }
            Event::LinkContended { cycle, .. } => {
                self.roll_cycle(cycle);
                self.counters.contentions += 1;
                self.cur_blocked += 1;
            }
            Event::MessageDelivered { cycle, .. } => {
                self.roll_cycle(cycle);
                self.counters.delivered += 1;
                self.latency.observe(cycle);
            }
            Event::FaultApplied { .. } => self.counters.faults_applied += 1,
            Event::RerouteComputed { .. } => self.counters.reroutes += 1,
            Event::WatchdogIdle { skipped, .. } => {
                self.counters.idle_jumps += 1;
                self.counters.idle_cycles_skipped += skipped;
            }
            Event::RecoveryAttempt { .. } => self.counters.recovery_attempts += 1,
            Event::MessageRequeued { .. } => self.counters.requeues += 1,
            Event::EmbeddingRepaired { .. } => self.counters.repairs += 1,
            Event::CheckpointWritten { .. } => self.counters.checkpoints += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(cycle: u64, msg: u32, edge: u32) -> Event {
        Event::HopTaken {
            cycle,
            msg,
            from: 0,
            to: 1,
            edge,
        }
    }

    #[test]
    fn aggregates_counters_edges_and_latency() {
        let mut m = MetricsSink::new();
        m.record(Event::BatchStarted { messages: 2 });
        m.record(hop(1, 0, 5));
        m.record(Event::LinkContended {
            cycle: 1,
            edge: 5,
            msg: 1,
            winner: 0,
        });
        m.record(hop(2, 0, 5));
        m.record(Event::MessageDelivered {
            cycle: 2,
            msg: 0,
            at: 1,
        });
        m.finish();
        assert_eq!(m.counters().hops, 2);
        assert_eq!(m.counters().contentions, 1);
        assert_eq!(m.counters().delivered, 1);
        assert_eq!(m.edge_hops()[5], 2);
        assert_eq!(m.hottest_edges(3), vec![(5, 2)]);
        // Two cycles sampled: cycle 1 had one blocked message, cycle 2 none.
        assert_eq!(m.queue_depth().count(), 2);
        assert_eq!(m.queue_depth().sum(), 1);
        assert_eq!(m.latency().count(), 1);
        assert_eq!(m.latency().sum(), 2);
        assert_eq!(m.event_count(), 5);
    }

    #[test]
    fn finish_is_idempotent_and_batch_start_flushes() {
        let mut m = MetricsSink::new();
        m.record(Event::BatchStarted { messages: 1 });
        m.record(hop(1, 0, 0));
        m.record(Event::BatchStarted { messages: 1 });
        m.record(hop(1, 0, 1));
        m.finish();
        m.finish();
        assert_eq!(m.queue_depth().count(), 2);
    }

    #[test]
    fn hottest_edges_orders_by_hops_then_index() {
        let mut m = MetricsSink::new();
        m.record(hop(1, 0, 3));
        m.record(hop(2, 0, 1));
        m.record(hop(3, 0, 3));
        m.record(hop(4, 0, 7));
        m.finish();
        assert_eq!(m.hottest_edges(2), vec![(3, 2), (1, 1)]);
        assert_eq!(m.hottest_edges(10).len(), 3);
    }

    #[test]
    fn exporters_render_all_sections() {
        let mut m = MetricsSink::new();
        m.record(Event::BatchStarted { messages: 1 });
        m.record(hop(1, 0, 2));
        m.record(Event::MessageDelivered {
            cycle: 1,
            msg: 0,
            at: 1,
        });
        m.finish();
        let jsonl = m.to_jsonl();
        // Every line is a standalone JSON object.
        for line in jsonl.lines() {
            assert!(xtree_json::from_str(line).is_ok(), "bad JSONL line {line}");
        }
        assert!(jsonl.contains("\"type\":\"counters\""));
        assert!(jsonl.contains("\"name\":\"queue_depth\""));
        assert!(jsonl.contains("\"name\":\"message_latency_cycles\""));
        assert!(jsonl.contains("\"name\":\"edge_utilization_hops\""));
        assert!(jsonl.contains("\"type\":\"edge\""));
        let prom = m.to_prometheus();
        assert!(prom.contains("xtree_sim_hops_total 1"));
        assert!(prom.contains("xtree_sim_message_latency_cycles_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("xtree_sim_edge_hops_total{edge=\"2\"} 1"));
        assert!(prom.contains("# TYPE xtree_sim_queue_depth histogram"));
    }
}

//! The typed event vocabulary the engine emits.
//!
//! Events are small `Copy` values built from the engine's own state — no
//! strings, no allocation — so recording one is a handful of stores.
//! `cycle` is always the batch-local cycle number (the fault clock is a
//! property of the [`FaultState`], not of the event stream), which keeps
//! traces of equal seeds byte-identical even when one engine previously
//! ran other batches.
//!
//! [`FaultState`]: ../../xtree_sim/fault/struct.FaultState.html

/// One observable engine action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A batch began; resets the trace's cycle delta.
    BatchStarted {
        /// Messages injected (including free `src == dst` ones).
        messages: u32,
    },
    /// Message `msg` crossed directed link `edge` this cycle.
    HopTaken {
        cycle: u64,
        msg: u32,
        from: u32,
        to: u32,
        edge: u32,
    },
    /// Message `msg` wanted `edge` but lost it to `winner` and waits.
    LinkContended {
        cycle: u64,
        edge: u32,
        msg: u32,
        winner: u32,
    },
    /// Message `msg` reached its destination `at`.
    MessageDelivered { cycle: u64, msg: u32, at: u32 },
    /// A fault-plan event batch applied; totals are the damage *currently*
    /// in effect afterwards.
    FaultApplied {
        cycle: u64,
        down_links: u32,
        down_nodes: u32,
    },
    /// Every in-flight route was recomputed on the survivor graph.
    RerouteComputed {
        cycle: u64,
        /// Messages still in flight (each got a fresh route or parked).
        messages: u32,
    },
    /// Nothing could move; the engine jumped the clock to the next
    /// scheduled fault event instead of idling cycle by cycle.
    WatchdogIdle {
        /// Cycle *after* the jump.
        cycle: u64,
        /// Idle cycles skipped.
        skipped: u64,
    },
    /// A recovery supervisor is about to re-dispatch undelivered messages.
    RecoveryAttempt {
        /// 1-based retry number (the initial dispatch is attempt 0).
        attempt: u32,
        /// Simulated cycles waited out before this attempt.
        backoff: u32,
        /// Messages re-dispatched in this attempt.
        requeued: u32,
    },
    /// One undelivered message was re-sourced and queued for retry.
    MessageRequeued {
        /// Retry number the message rides in.
        attempt: u32,
        /// The message's id in its original batch.
        msg: u32,
        /// Host vertex it is re-sent from (post-repair).
        src: u32,
        /// Host vertex it now targets (post-repair).
        dst: u32,
    },
    /// Guest nodes were migrated off dead host vertices.
    EmbeddingRepaired {
        /// Guest nodes that moved.
        migrated: u32,
        /// Maximum host load after the migration.
        max_load: u32,
        /// Embedding dilation after the migration.
        dilation: u32,
    },
    /// A checkpoint was serialized.
    CheckpointWritten {
        /// Encoded size of the checkpoint.
        bytes: u64,
    },
}

impl Event {
    /// The batch-local cycle the event belongs to (0 for `BatchStarted`
    /// and for the supervisor-level recovery/checkpoint events, which
    /// happen between batches).
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::BatchStarted { .. }
            | Event::RecoveryAttempt { .. }
            | Event::MessageRequeued { .. }
            | Event::EmbeddingRepaired { .. }
            | Event::CheckpointWritten { .. } => 0,
            Event::HopTaken { cycle, .. }
            | Event::LinkContended { cycle, .. }
            | Event::MessageDelivered { cycle, .. }
            | Event::FaultApplied { cycle, .. }
            | Event::RerouteComputed { cycle, .. }
            | Event::WatchdogIdle { cycle, .. } => cycle,
        }
    }
}

//! Compact binary traces and deterministic replay.
//!
//! A trace is the magic header followed by one record per event: a tag
//! byte, then LEB128 fields (see [`crate::varint`]). The cycle is
//! delta-encoded against the previous event — batches visit cycles in
//! non-decreasing order and `BatchStarted` resets the base to zero, so
//! deltas stay tiny and most records are two to six bytes.
//!
//! The engine is deterministic, so two runs of the same seed produce the
//! same event stream and therefore *byte-identical* traces. That turns
//! replay verification into `bytes_a == bytes_b` — no event-by-event
//! tolerance logic — and [`read_trace`] exists for inspecting or
//! diffing a stream when the bytes do differ.

use crate::event::Event;
use crate::sink::Sink;
use crate::varint::{decode_u64, encode_u64};
use std::fmt;

/// First bytes of every trace file.
pub const TRACE_MAGIC: &[u8; 8] = b"XTRACE1\n";

const TAG_BATCH_STARTED: u8 = 0;
const TAG_HOP_TAKEN: u8 = 1;
const TAG_LINK_CONTENDED: u8 = 2;
const TAG_MESSAGE_DELIVERED: u8 = 3;
const TAG_FAULT_APPLIED: u8 = 4;
const TAG_REROUTE_COMPUTED: u8 = 5;
const TAG_WATCHDOG_IDLE: u8 = 6;
const TAG_RECOVERY_ATTEMPT: u8 = 7;
const TAG_MESSAGE_REQUEUED: u8 = 8;
const TAG_EMBEDDING_REPAIRED: u8 = 9;
const TAG_CHECKPOINT_WRITTEN: u8 = 10;

/// A [`Sink`] that appends every event to an in-memory binary trace.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    buf: Vec<u8>,
    prev_cycle: u64,
    events: u64,
}

impl TraceRecorder {
    /// An empty trace (magic header only).
    pub fn new() -> Self {
        TraceRecorder {
            buf: TRACE_MAGIC.to_vec(),
            prev_cycle: 0,
            events: 0,
        }
    }

    /// Resumes recording onto a previously encoded trace (e.g. one pulled
    /// out of a checkpoint): appended events continue the same stream, so
    /// an interrupted-and-resumed run can still match an uninterrupted one
    /// byte for byte.
    ///
    /// # Errors
    /// [`TraceError`] when `bytes` is not a well-formed trace.
    pub fn resume(bytes: Vec<u8>) -> Result<Self, TraceError> {
        let events = read_trace(&bytes)?;
        // Recover the delta base exactly as recording would have left it:
        // cycle-bearing events move it, `BatchStarted` resets it, and the
        // supervisor-level events leave it untouched.
        let mut prev_cycle = 0;
        for ev in &events {
            match ev {
                Event::BatchStarted { .. } => prev_cycle = 0,
                Event::RecoveryAttempt { .. }
                | Event::MessageRequeued { .. }
                | Event::EmbeddingRepaired { .. }
                | Event::CheckpointWritten { .. } => {}
                other => prev_cycle = other.cycle(),
            }
        }
        Ok(TraceRecorder {
            buf: bytes,
            prev_cycle,
            events: events.len() as u64,
        })
    }

    /// The encoded trace, header included — what goes in the file.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the recorder, returning the encoded trace.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Events recorded so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Drops everything recorded, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.truncate(TRACE_MAGIC.len());
        self.prev_cycle = 0;
        self.events = 0;
    }

    fn delta(&mut self, cycle: u64) -> u64 {
        // Cycles are non-decreasing within a batch; saturate rather than
        // corrupt the stream if an engine bug ever violates that.
        let d = cycle.saturating_sub(self.prev_cycle);
        self.prev_cycle = cycle;
        d
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl Sink for TraceRecorder {
    fn record(&mut self, ev: Event) {
        self.events += 1;
        let buf = &mut self.buf;
        match ev {
            Event::BatchStarted { messages } => {
                buf.push(TAG_BATCH_STARTED);
                self.prev_cycle = 0;
                encode_u64(buf, u64::from(messages));
            }
            Event::HopTaken {
                cycle,
                msg,
                from,
                to,
                edge,
            } => {
                buf.push(TAG_HOP_TAKEN);
                let d = self.delta(cycle);
                encode_u64(&mut self.buf, d);
                encode_u64(&mut self.buf, u64::from(msg));
                encode_u64(&mut self.buf, u64::from(from));
                encode_u64(&mut self.buf, u64::from(to));
                encode_u64(&mut self.buf, u64::from(edge));
            }
            Event::LinkContended {
                cycle,
                edge,
                msg,
                winner,
            } => {
                buf.push(TAG_LINK_CONTENDED);
                let d = self.delta(cycle);
                encode_u64(&mut self.buf, d);
                encode_u64(&mut self.buf, u64::from(edge));
                encode_u64(&mut self.buf, u64::from(msg));
                encode_u64(&mut self.buf, u64::from(winner));
            }
            Event::MessageDelivered { cycle, msg, at } => {
                buf.push(TAG_MESSAGE_DELIVERED);
                let d = self.delta(cycle);
                encode_u64(&mut self.buf, d);
                encode_u64(&mut self.buf, u64::from(msg));
                encode_u64(&mut self.buf, u64::from(at));
            }
            Event::FaultApplied {
                cycle,
                down_links,
                down_nodes,
            } => {
                buf.push(TAG_FAULT_APPLIED);
                let d = self.delta(cycle);
                encode_u64(&mut self.buf, d);
                encode_u64(&mut self.buf, u64::from(down_links));
                encode_u64(&mut self.buf, u64::from(down_nodes));
            }
            Event::RerouteComputed { cycle, messages } => {
                buf.push(TAG_REROUTE_COMPUTED);
                let d = self.delta(cycle);
                encode_u64(&mut self.buf, d);
                encode_u64(&mut self.buf, u64::from(messages));
            }
            Event::WatchdogIdle { cycle, skipped } => {
                buf.push(TAG_WATCHDOG_IDLE);
                let d = self.delta(cycle);
                encode_u64(&mut self.buf, d);
                encode_u64(&mut self.buf, skipped);
            }
            // Supervisor-level events carry no batch-local cycle and leave
            // the delta base alone (the next BatchStarted resets it).
            Event::RecoveryAttempt {
                attempt,
                backoff,
                requeued,
            } => {
                buf.push(TAG_RECOVERY_ATTEMPT);
                encode_u64(buf, u64::from(attempt));
                encode_u64(buf, u64::from(backoff));
                encode_u64(buf, u64::from(requeued));
            }
            Event::MessageRequeued {
                attempt,
                msg,
                src,
                dst,
            } => {
                buf.push(TAG_MESSAGE_REQUEUED);
                encode_u64(buf, u64::from(attempt));
                encode_u64(buf, u64::from(msg));
                encode_u64(buf, u64::from(src));
                encode_u64(buf, u64::from(dst));
            }
            Event::EmbeddingRepaired {
                migrated,
                max_load,
                dilation,
            } => {
                buf.push(TAG_EMBEDDING_REPAIRED);
                encode_u64(buf, u64::from(migrated));
                encode_u64(buf, u64::from(max_load));
                encode_u64(buf, u64::from(dilation));
            }
            Event::CheckpointWritten { bytes } => {
                buf.push(TAG_CHECKPOINT_WRITTEN);
                encode_u64(buf, bytes);
            }
        }
    }
}

/// Why a trace failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The input ended inside a record (or a varint overflowed).
    Truncated {
        /// Byte offset of the failing record's tag.
        offset: usize,
    },
    /// An unknown record tag.
    BadTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The tag value found.
        tag: u8,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated inside the record at byte {offset}")
            }
            TraceError::BadTag { offset, tag } => {
                write!(f, "unknown record tag {tag} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Decodes a complete trace back into its event stream.
///
/// # Errors
/// [`TraceError`] describing the first malformed byte.
pub fn read_trace(bytes: &[u8]) -> Result<Vec<Event>, TraceError> {
    if !bytes.starts_with(TRACE_MAGIC) {
        return Err(TraceError::BadMagic);
    }
    let mut pos = TRACE_MAGIC.len();
    let mut prev_cycle = 0u64;
    let mut events = Vec::new();
    while pos < bytes.len() {
        let start = pos;
        let tag = bytes[pos];
        pos += 1;
        let field =
            |pos: &mut usize| decode_u64(bytes, pos).ok_or(TraceError::Truncated { offset: start });
        let ev = match tag {
            TAG_BATCH_STARTED => {
                prev_cycle = 0;
                Event::BatchStarted {
                    messages: field(&mut pos)? as u32,
                }
            }
            TAG_HOP_TAKEN => {
                let cycle = prev_cycle + field(&mut pos)?;
                prev_cycle = cycle;
                Event::HopTaken {
                    cycle,
                    msg: field(&mut pos)? as u32,
                    from: field(&mut pos)? as u32,
                    to: field(&mut pos)? as u32,
                    edge: field(&mut pos)? as u32,
                }
            }
            TAG_LINK_CONTENDED => {
                let cycle = prev_cycle + field(&mut pos)?;
                prev_cycle = cycle;
                Event::LinkContended {
                    cycle,
                    edge: field(&mut pos)? as u32,
                    msg: field(&mut pos)? as u32,
                    winner: field(&mut pos)? as u32,
                }
            }
            TAG_MESSAGE_DELIVERED => {
                let cycle = prev_cycle + field(&mut pos)?;
                prev_cycle = cycle;
                Event::MessageDelivered {
                    cycle,
                    msg: field(&mut pos)? as u32,
                    at: field(&mut pos)? as u32,
                }
            }
            TAG_FAULT_APPLIED => {
                let cycle = prev_cycle + field(&mut pos)?;
                prev_cycle = cycle;
                Event::FaultApplied {
                    cycle,
                    down_links: field(&mut pos)? as u32,
                    down_nodes: field(&mut pos)? as u32,
                }
            }
            TAG_REROUTE_COMPUTED => {
                let cycle = prev_cycle + field(&mut pos)?;
                prev_cycle = cycle;
                Event::RerouteComputed {
                    cycle,
                    messages: field(&mut pos)? as u32,
                }
            }
            TAG_WATCHDOG_IDLE => {
                let cycle = prev_cycle + field(&mut pos)?;
                prev_cycle = cycle;
                Event::WatchdogIdle {
                    cycle,
                    skipped: field(&mut pos)?,
                }
            }
            TAG_RECOVERY_ATTEMPT => Event::RecoveryAttempt {
                attempt: field(&mut pos)? as u32,
                backoff: field(&mut pos)? as u32,
                requeued: field(&mut pos)? as u32,
            },
            TAG_MESSAGE_REQUEUED => Event::MessageRequeued {
                attempt: field(&mut pos)? as u32,
                msg: field(&mut pos)? as u32,
                src: field(&mut pos)? as u32,
                dst: field(&mut pos)? as u32,
            },
            TAG_EMBEDDING_REPAIRED => Event::EmbeddingRepaired {
                migrated: field(&mut pos)? as u32,
                max_load: field(&mut pos)? as u32,
                dilation: field(&mut pos)? as u32,
            },
            TAG_CHECKPOINT_WRITTEN => Event::CheckpointWritten {
                bytes: field(&mut pos)?,
            },
            tag => return Err(TraceError::BadTag { offset: start, tag }),
        };
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::BatchStarted { messages: 4 },
            Event::RerouteComputed {
                cycle: 0,
                messages: 4,
            },
            Event::HopTaken {
                cycle: 1,
                msg: 0,
                from: 3,
                to: 1,
                edge: 9,
            },
            Event::LinkContended {
                cycle: 1,
                edge: 9,
                msg: 2,
                winner: 0,
            },
            Event::MessageDelivered {
                cycle: 2,
                msg: 0,
                at: 1,
            },
            Event::FaultApplied {
                cycle: 5,
                down_links: 2,
                down_nodes: 0,
            },
            Event::WatchdogIdle {
                cycle: 40,
                skipped: 35,
            },
            // Supervisor events sit between batches and carry no cycle.
            Event::EmbeddingRepaired {
                migrated: 3,
                max_load: 17,
                dilation: 4,
            },
            Event::MessageRequeued {
                attempt: 1,
                msg: 2,
                src: 7,
                dst: 4,
            },
            Event::RecoveryAttempt {
                attempt: 1,
                backoff: 8,
                requeued: 1,
            },
            Event::CheckpointWritten { bytes: 96 },
            // A second batch resets the cycle base below the previous one.
            Event::BatchStarted { messages: 1 },
            Event::HopTaken {
                cycle: 1,
                msg: 0,
                from: 0,
                to: 2,
                edge: 1,
            },
        ]
    }

    #[test]
    fn trace_round_trips_through_the_reader() {
        let mut rec = TraceRecorder::new();
        let events = sample_events();
        for &ev in &events {
            rec.record(ev);
        }
        assert_eq!(rec.event_count(), events.len() as u64);
        assert_eq!(read_trace(rec.bytes()).unwrap(), events);
    }

    #[test]
    fn identical_streams_are_byte_identical_and_clear_resets() {
        let (mut a, mut b) = (TraceRecorder::new(), TraceRecorder::new());
        for &ev in &sample_events() {
            a.record(ev);
            b.record(ev);
        }
        assert_eq!(a.bytes(), b.bytes());
        let snapshot = a.bytes().to_vec();
        a.clear();
        assert_eq!(a.bytes(), TRACE_MAGIC);
        for &ev in &sample_events() {
            a.record(ev);
        }
        assert_eq!(a.bytes(), &snapshot[..], "clear must reset the delta base");
    }

    #[test]
    fn reader_rejects_malformed_input() {
        assert_eq!(read_trace(b"not a trace"), Err(TraceError::BadMagic));
        let mut rec = TraceRecorder::new();
        rec.record(Event::BatchStarted { messages: 300 });
        let bytes = rec.bytes();
        // Chop the last byte: the record at offset 8 is now truncated.
        assert_eq!(
            read_trace(&bytes[..bytes.len() - 1]),
            Err(TraceError::Truncated { offset: 8 })
        );
        let mut bad = TRACE_MAGIC.to_vec();
        bad.push(99);
        assert_eq!(
            read_trace(&bad),
            Err(TraceError::BadTag { offset: 8, tag: 99 })
        );
    }

    #[test]
    fn resume_continues_a_stream_byte_identically() {
        let events = sample_events();
        for cut in 0..=events.len() {
            let mut full = TraceRecorder::new();
            let mut prefix = TraceRecorder::new();
            for &ev in &events[..cut] {
                full.record(ev);
                prefix.record(ev);
            }
            let mut resumed = TraceRecorder::resume(prefix.into_bytes()).unwrap();
            assert_eq!(resumed.event_count(), cut as u64);
            for &ev in &events[cut..] {
                full.record(ev);
                resumed.record(ev);
            }
            assert_eq!(full.bytes(), resumed.bytes(), "cut at {cut}");
        }
        assert_eq!(
            TraceRecorder::resume(b"junk".to_vec()).err(),
            Some(TraceError::BadMagic)
        );
    }

    #[test]
    fn empty_trace_is_just_the_magic() {
        let rec = TraceRecorder::new();
        assert_eq!(rec.bytes(), TRACE_MAGIC);
        assert_eq!(read_trace(rec.bytes()).unwrap(), Vec::new());
    }
}

//! LEB128 variable-length integers — the wire format of binary traces.
//!
//! Seven payload bits per byte, least significant group first, high bit
//! set on every byte but the last. Values the engine emits are small
//! (cycle deltas, vertex ids), so most fields are one byte.

/// Appends `v` to `buf` in LEB128.
pub fn encode_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes one LEB128 value at `*pos`, advancing it past the encoding.
///
/// Returns `None` on truncated input or an encoding longer than a `u64`
/// can hold (more than ten bytes, or payload bits past bit 63).
pub fn decode_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return None; // would overflow u64
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        encode_u64(&mut buf, v);
        let mut pos = 0;
        let back = decode_u64(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decoder must consume the whole encoding");
        (back, buf.len())
    }

    #[test]
    fn encodes_boundary_values() {
        assert_eq!(round_trip(0), (0, 1));
        assert_eq!(round_trip(127), (127, 1));
        assert_eq!(round_trip(128), (128, 2));
        assert_eq!(round_trip(16_383), (16_383, 2));
        assert_eq!(round_trip(16_384), (16_384, 3));
        assert_eq!(round_trip(u64::MAX), (u64::MAX, 10));
    }

    #[test]
    fn rejects_truncated_and_oversized_input() {
        assert_eq!(decode_u64(&[], &mut 0), None);
        assert_eq!(decode_u64(&[0x80], &mut 0), None);
        // Eleven continuation bytes can never be a u64.
        let bad = [0x80u8; 10];
        assert_eq!(decode_u64(&bad, &mut 0), None);
        // Ten bytes whose top byte carries bits past 2^63.
        let mut high = vec![0xffu8; 9];
        high.push(0x02);
        assert_eq!(decode_u64(&high, &mut 0), None);
    }

    #[test]
    fn sequences_decode_in_order() {
        let vals = [0u64, 1, 300, 1 << 20, u64::MAX, 7];
        let mut buf = Vec::new();
        for &v in &vals {
            encode_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(decode_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }
}

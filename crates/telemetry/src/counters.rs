//! Lock-free event counters for concurrent sweeps.
//!
//! [`AtomicCounters`] tallies events with relaxed atomic adds — no locks,
//! no contention beyond the cache line — and `&AtomicCounters` implements
//! [`Sink`], so a rayon sweep can hand every worker a shared reference to
//! one instance and read a consistent total afterwards ([`snapshot`]).
//!
//! [`snapshot`]: AtomicCounters::snapshot

use crate::event::Event;
use crate::sink::Sink;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Shared event tallies, updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct AtomicCounters {
    batches: AtomicU64,
    hops: AtomicU64,
    contentions: AtomicU64,
    delivered: AtomicU64,
    faults_applied: AtomicU64,
    reroutes: AtomicU64,
    idle_jumps: AtomicU64,
    idle_cycles_skipped: AtomicU64,
    recovery_attempts: AtomicU64,
    requeues: AtomicU64,
    repairs: AtomicU64,
    checkpoints: AtomicU64,
}

/// A plain-value copy of [`AtomicCounters`] at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub batches: u64,
    pub hops: u64,
    pub contentions: u64,
    pub delivered: u64,
    pub faults_applied: u64,
    pub reroutes: u64,
    pub idle_jumps: u64,
    pub idle_cycles_skipped: u64,
    pub recovery_attempts: u64,
    pub requeues: u64,
    pub repairs: u64,
    pub checkpoints: u64,
}

impl Counters {
    /// Total events these counters account for.
    pub fn events(&self) -> u64 {
        self.batches
            + self.hops
            + self.contentions
            + self.delivered
            + self.faults_applied
            + self.reroutes
            + self.idle_jumps
            + self.recovery_attempts
            + self.requeues
            + self.repairs
            + self.checkpoints
    }
}

impl AtomicCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AtomicCounters::default()
    }

    /// Tallies one event (usable through a shared reference).
    pub fn record(&self, ev: Event) {
        let c = match ev {
            Event::BatchStarted { .. } => &self.batches,
            Event::HopTaken { .. } => &self.hops,
            Event::LinkContended { .. } => &self.contentions,
            Event::MessageDelivered { .. } => &self.delivered,
            Event::FaultApplied { .. } => &self.faults_applied,
            Event::RerouteComputed { .. } => &self.reroutes,
            Event::WatchdogIdle { skipped, .. } => {
                self.idle_cycles_skipped.fetch_add(skipped, Relaxed);
                &self.idle_jumps
            }
            Event::RecoveryAttempt { .. } => &self.recovery_attempts,
            Event::MessageRequeued { .. } => &self.requeues,
            Event::EmbeddingRepaired { .. } => &self.repairs,
            Event::CheckpointWritten { .. } => &self.checkpoints,
        };
        c.fetch_add(1, Relaxed);
    }

    /// A consistent-enough copy: exact once all writers are done.
    pub fn snapshot(&self) -> Counters {
        Counters {
            batches: self.batches.load(Relaxed),
            hops: self.hops.load(Relaxed),
            contentions: self.contentions.load(Relaxed),
            delivered: self.delivered.load(Relaxed),
            faults_applied: self.faults_applied.load(Relaxed),
            reroutes: self.reroutes.load(Relaxed),
            idle_jumps: self.idle_jumps.load(Relaxed),
            idle_cycles_skipped: self.idle_cycles_skipped.load(Relaxed),
            recovery_attempts: self.recovery_attempts.load(Relaxed),
            requeues: self.requeues.load(Relaxed),
            repairs: self.repairs.load(Relaxed),
            checkpoints: self.checkpoints.load(Relaxed),
        }
    }
}

/// A shared reference to the counters is itself a sink — clone the
/// reference into each worker thread.
impl Sink for &AtomicCounters {
    #[inline]
    fn record(&mut self, ev: Event) {
        AtomicCounters::record(self, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forces dispatch through the `Sink` impl (not the inherent method).
    fn via_sink(mut sink: impl Sink, ev: Event) {
        sink.record(ev);
    }

    #[test]
    fn records_each_event_kind_in_its_counter() {
        let c = AtomicCounters::new();
        via_sink(&c, Event::BatchStarted { messages: 2 });
        via_sink(
            &c,
            Event::HopTaken {
                cycle: 1,
                msg: 0,
                from: 0,
                to: 1,
                edge: 0,
            },
        );
        via_sink(
            &c,
            Event::MessageDelivered {
                cycle: 1,
                msg: 0,
                at: 1,
            },
        );
        via_sink(
            &c,
            Event::WatchdogIdle {
                cycle: 10,
                skipped: 9,
            },
        );
        let s = c.snapshot();
        assert_eq!(s.batches, 1);
        assert_eq!(s.hops, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.idle_jumps, 1);
        assert_eq!(s.idle_cycles_skipped, 9);
        assert_eq!(s.events(), 4);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = AtomicCounters::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        via_sink(
                            &c,
                            Event::HopTaken {
                                cycle: i,
                                msg: 0,
                                from: 0,
                                to: 1,
                                edge: 0,
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(c.snapshot().hops, 4000);
    }
}

//! Observability for the simulation engine: typed events, statically
//! dispatched sinks, binary traces with deterministic replay, and metric
//! export.
//!
//! The engine's cycle loop reports what happens through a [`Sink`] — a
//! trait with an associated `const ACTIVE` flag, so the no-op sink
//! ([`NopSink`], `ACTIVE = false`) monomorphises every instrumentation
//! site away and the uninstrumented fast path survives untouched (the
//! `telbench` binary in `xtree-bench` verifies the overhead is within
//! noise of zero). Real sinks plug in without engine changes:
//!
//! * [`TraceRecorder`] — a compact binary trace (varint fields, the cycle
//!   delta-encoded). Runs are deterministic, so re-running a seed and
//!   comparing trace bytes ([`read_trace`] / byte equality) is an
//!   end-to-end replay check of the whole engine;
//! * [`MetricsSink`] — counters plus fixed-bucket histograms (queue
//!   depth, per-edge utilization, message latency), exported as JSONL or
//!   Prometheus text;
//! * [`AtomicCounters`] — lock-free relaxed counters; `&AtomicCounters`
//!   is itself a [`Sink`], so one instance aggregates across rayon
//!   threads;
//! * [`Tee`] — fans one event stream out to two sinks.

pub mod counters;
pub mod event;
pub mod hist;
pub mod metrics;
pub mod sink;
pub mod trace;
pub mod varint;

pub use counters::{AtomicCounters, Counters};
pub use event::Event;
pub use hist::Histogram;
pub use metrics::{histogram_jsonl, histogram_prometheus, MetricsSink};
pub use sink::{NopSink, Sink, Tee};
pub use trace::{read_trace, TraceError, TraceRecorder, TRACE_MAGIC};

//! Fixed-bucket histograms.
//!
//! Buckets are chosen at construction (ascending inclusive upper bounds
//! plus an implicit overflow bucket), so observing a value is one
//! `partition_point` over a handful of bounds and no allocation — cheap
//! enough for per-event use inside a sink.

/// A histogram over `u64` observations with fixed inclusive upper bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper bounds.
    ///
    /// Panics when `bounds` is empty or not strictly ascending — bucket
    /// layouts are compile-time decisions, so a bad one is a bug.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Power-of-two bounds `1, 2, 4, …, 2^(buckets-1)`.
    pub fn pow2(buckets: u32) -> Self {
        let bounds: Vec<u64> = (0..buckets).map(|i| 1u64 << i).collect();
        Histogram::new(&bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the bucket layout:
    /// the inclusive upper bound of the first bucket whose cumulative count
    /// reaches `q · total`. Observations in the overflow bucket report the
    /// exact maximum seen. Returns 0 when the histogram is empty.
    ///
    /// The estimate errs high by at most one bucket width — fine for the
    /// pow-2 latency layouts this crate uses, where a bound is always
    /// within 2x of every observation it covers.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bound, count) in self.buckets() {
            cumulative += count;
            if cumulative >= target {
                // The overflow bucket has no bound; the max is exact there.
                return bound.unwrap_or(self.max).min(self.max);
            }
        }
        self.max
    }

    /// Buckets as `(inclusive upper bound, count)`; the final bucket has
    /// no bound (`None`) and holds everything larger than the last one.
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_first_bucket_whose_bound_holds_them() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1000] {
            h.observe(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        // ≤1: {0,1}; ≤2: {2}; ≤4: {3,4}; ≤8: {5,8}; overflow: {9,1000}.
        assert_eq!(counts, vec![2, 1, 2, 2, 2]);
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1032);
    }

    #[test]
    fn bucket_edges_are_inclusive() {
        let mut h = Histogram::pow2(4); // bounds 1, 2, 4, 8
        h.observe(4); // exactly on a bound → that bucket, not the next
        h.observe(5);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![0, 0, 1, 1, 0]);
    }

    #[test]
    fn pow2_layout_and_mean() {
        let h = Histogram::pow2(3);
        let bounds: Vec<_> = h.buckets().map(|(b, _)| b).collect();
        assert_eq!(bounds, vec![Some(1), Some(2), Some(4), None]);
        let mut h = Histogram::pow2(3);
        assert_eq!(h.mean(), 0.0);
        h.observe(2);
        h.observe(4);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bounds() {
        Histogram::new(&[2, 1]);
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [1, 1, 2, 3, 4, 8] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 1); // target clamps to the 1st sample
        assert_eq!(h.quantile(0.33), 1); // 2 of 6 samples are ≤ 1
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.75), 4); // 3 lands in the ≤4 bucket
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn quantile_overflow_bucket_reports_exact_max() {
        let mut h = Histogram::new(&[1]);
        h.observe(1);
        h.observe(5000);
        assert_eq!(h.quantile(1.0), 5000);
        // A bound above the largest observation is clamped to the max.
        let mut h = Histogram::new(&[1024]);
        h.observe(3);
        assert_eq!(h.quantile(1.0), 3);
    }
}

//! The [`Sink`] trait and its zero-cost no-op implementation.

use crate::event::Event;

/// Consumes engine events.
///
/// Instrumentation sites in the engine are written as
/// `if S::ACTIVE { sink.record(...) }`: `ACTIVE` is an associated
/// constant, so for [`NopSink`] the branch — including the work of
/// building the event — is removed at monomorphisation time and the
/// uninstrumented machine code is recovered exactly. Implementors that
/// actually observe events keep the default `ACTIVE = true`.
pub trait Sink {
    /// Whether instrumentation sites should fire at all.
    const ACTIVE: bool = true;

    /// Observes one event.
    fn record(&mut self, ev: Event);
}

/// The disabled sink: `ACTIVE = false`, so every instrumentation site
/// guarded by it compiles out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NopSink;

impl Sink for NopSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: Event) {}
}

/// Forwarding impl so `&mut sink` is itself a sink — lets one recorder
/// outlive several engine calls without moving it.
impl<S: Sink + ?Sized> Sink for &mut S {
    const ACTIVE: bool = S::ACTIVE;

    #[inline(always)]
    fn record(&mut self, ev: Event) {
        (**self).record(ev);
    }
}

/// Fans one event stream out to two sinks (e.g. a trace file *and* live
/// metrics). Active when either branch is.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for Tee<A, B> {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    #[inline(always)]
    fn record(&mut self, ev: Event) {
        if A::ACTIVE {
            self.0.record(ev);
        }
        if B::ACTIVE {
            self.1.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collect(Vec<Event>);

    impl Sink for Collect {
        fn record(&mut self, ev: Event) {
            self.0.push(ev);
        }
    }

    #[test]
    fn nop_is_inactive_and_tee_propagates_activity() {
        const {
            assert!(!NopSink::ACTIVE);
            assert!(Collect::ACTIVE);
            assert!(<Tee<Collect, NopSink> as Sink>::ACTIVE);
            assert!(!<Tee<NopSink, NopSink> as Sink>::ACTIVE);
        }
    }

    #[test]
    fn tee_records_into_both_active_branches() {
        let ev = Event::BatchStarted { messages: 3 };
        let mut t = Tee(Collect::default(), Collect::default());
        t.record(ev);
        assert_eq!(t.0 .0, vec![ev]);
        assert_eq!(t.1 .0, vec![ev]);
        // Through the &mut forwarding impl, too — the generic helper pins
        // dispatch to `<&mut Collect as Sink>::record`.
        fn via_sink(mut sink: impl Sink, ev: Event) {
            sink.record(ev);
        }
        let mut c = Collect::default();
        via_sink(&mut c, ev);
        assert_eq!(c.0, vec![ev]);
    }
}

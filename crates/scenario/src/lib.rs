//! Scenario subsystem: the workload zoo on two axes.
//!
//! Every bench and test used to draw uniform-random guest trees and
//! uniform message batches, so published numbers said little about
//! adversarial or realistic load. This crate opens the scenario space:
//!
//! * **Tree-shape axis** — [`xtree_trees::TreeFamily`] (paths,
//!   caterpillars, perfectly balanced, uniform-random shapes,
//!   insertion-order BSTs, skewed attachment with a configurable bias),
//!   addressed by round-trippable labels like `skewed:240`.
//! * **Traffic axis** — [`TrafficModel`]: per-guest-edge communication
//!   demand derived from the canonical workload generators
//!   (broadcast/reduce/exchange/dnc), Zipf-skewed demand, hot-spot
//!   subtrees, and diurnal ramp profiles; plus the matching cache-key
//!   distributions for the serving-layer load generator.
//!
//! The two axes meet in [`score`]: embeddings are scored by
//! *traffic-weighted* congestion (the demand crossing each host link,
//! following the data-arrangement-problem objective of Çela et al.)
//! alongside the classic unweighted number, and [`spec`] turns a small
//! plain-text/JSON scenario spec into the full families × traffic ×
//! sizes matrix that `scenariobench` sweeps.

pub mod score;
pub mod spec;
pub mod traffic;

pub use score::{matrix_to_json, run_cell, run_matrix, CellReport};
pub use spec::{ScenarioCell, ScenarioSpec, SpecError};
pub use traffic::{KeySampler, TrafficModel};

/// SplitMix64 — the crate's cheap stateless mixer for per-cell seeds and
/// per-request key draws (the finalizer of `java.util.SplittableRandom`).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

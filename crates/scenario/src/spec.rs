//! Scenario-matrix specs: a small plain-text or JSON description of
//! which (tree family × traffic model × size) cells to sweep.
//!
//! The plain-text form is line-oriented (`#` starts a comment):
//!
//! ```text
//! # families are TreeFamily labels, traffic are TrafficModel labels
//! families = path, balanced, uniform, skewed:240
//! traffic  = uniform, dnc, zipf:1.1
//! r        = 3, 4
//! seed     = 7
//! ```
//!
//! The JSON form mirrors it (`{"families": [...], "traffic": [...],
//! "r": [...], "seed": 7}`); [`ScenarioSpec::parse`] dispatches on the
//! leading `{`. Missing keys fall back to the defaults of
//! [`ScenarioSpec::default_matrix`].

use crate::splitmix64;
use crate::traffic::TrafficModel;
use xtree_trees::{TreeFamily, DEFAULT_SKEW_BIAS};

/// The full scenario matrix: every family crossed with every traffic
/// model at every size `r` (guest trees have `theorem1_size(r) / 16`
/// nodes and embed into an X-tree of height derived from `r`).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Tree-shape axis.
    pub families: Vec<TreeFamily>,
    /// Traffic axis.
    pub traffic: Vec<TrafficModel>,
    /// Size axis: Theorem-1 ranks.
    pub heights: Vec<u8>,
    /// Base seed; each cell derives its own via [`ScenarioCell::seed`].
    pub seed: u64,
}

/// One point of the matrix, with its derived per-cell seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioCell {
    /// Tree-shape family of this cell.
    pub family: TreeFamily,
    /// Traffic model of this cell.
    pub traffic: TrafficModel,
    /// Theorem-1 rank (sets guest and host sizes).
    pub r: u8,
    /// Per-cell seed, mixed from the spec seed and the cell coordinates
    /// so reordering the spec's lists never silently reuses a stream.
    pub seed: u64,
}

/// Parse failure: the offending line (or JSON key) and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self::default_matrix()
    }
}

impl ScenarioSpec {
    /// The published sweep: six families (one per shape regime) × the
    /// five canonical traffic models × two sizes.
    pub fn default_matrix() -> ScenarioSpec {
        ScenarioSpec {
            families: vec![
                TreeFamily::Path,
                TreeFamily::Caterpillar,
                TreeFamily::Balanced,
                TreeFamily::UniformRandom,
                TreeFamily::BstInsertion,
                TreeFamily::Skewed {
                    bias: DEFAULT_SKEW_BIAS,
                },
            ],
            traffic: TrafficModel::canonical(),
            heights: vec![4, 6],
            seed: 0xC0FFEE,
        }
    }

    /// The CI smoke matrix: small trees, one size, still covering four
    /// families and three traffic models (the acceptance floor).
    pub fn smoke() -> ScenarioSpec {
        ScenarioSpec {
            families: vec![
                TreeFamily::Path,
                TreeFamily::Balanced,
                TreeFamily::UniformRandom,
                TreeFamily::Skewed {
                    bias: DEFAULT_SKEW_BIAS,
                },
            ],
            traffic: vec![
                TrafficModel::Uniform,
                TrafficModel::Workload(3),
                TrafficModel::Zipf {
                    s: crate::traffic::DEFAULT_ZIPF_S,
                },
            ],
            heights: vec![3],
            seed: 0xC0FFEE,
        }
    }

    /// Parses a spec in either format: JSON when the first
    /// non-whitespace byte is `{`, the line-oriented text form otherwise.
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        if text.trim_start().starts_with('{') {
            Self::parse_json(text)
        } else {
            Self::parse_text(text)
        }
    }

    fn parse_text(text: &str) -> Result<ScenarioSpec, SpecError> {
        let mut spec = ScenarioSpec::default_matrix();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| SpecError(format!("expected `key = values`, got `{line}`")))?;
            let items: Vec<&str> = value
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            match key.trim() {
                "families" => spec.families = parse_families(&items)?,
                "traffic" => spec.traffic = parse_traffic(&items)?,
                "r" => spec.heights = parse_ranks(&items)?,
                "seed" => {
                    spec.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| SpecError(format!("bad seed `{}`", value.trim())))?
                }
                other => return Err(SpecError(format!("unknown key `{other}`"))),
            }
        }
        spec.validate()
    }

    fn parse_json(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = xtree_json::from_str(text).map_err(|e| SpecError(format!("bad JSON: {e}")))?;
        let mut spec = ScenarioSpec::default_matrix();
        let strings = |key: &str| -> Option<Vec<String>> {
            v.get(key).as_array().map(|a| {
                a.iter()
                    .map(|x| match x.as_str() {
                        Some(s) => s.to_string(),
                        None => xtree_json::to_string(x),
                    })
                    .collect()
            })
        };
        if let Some(items) = strings("families") {
            let refs: Vec<&str> = items.iter().map(String::as_str).collect();
            spec.families = parse_families(&refs)?;
        }
        if let Some(items) = strings("traffic") {
            let refs: Vec<&str> = items.iter().map(String::as_str).collect();
            spec.traffic = parse_traffic(&refs)?;
        }
        if let Some(items) = strings("r") {
            let refs: Vec<&str> = items.iter().map(String::as_str).collect();
            spec.heights = parse_ranks(&refs)?;
        }
        if !matches!(v.get("seed"), xtree_json::Value::Null) {
            spec.seed = v
                .get("seed")
                .as_u64()
                .ok_or_else(|| SpecError("seed must be a non-negative integer".into()))?;
        }
        spec.validate()
    }

    fn validate(self) -> Result<ScenarioSpec, SpecError> {
        if self.families.is_empty() {
            return Err(SpecError("families list is empty".into()));
        }
        if self.traffic.is_empty() {
            return Err(SpecError("traffic list is empty".into()));
        }
        if self.heights.is_empty() {
            return Err(SpecError("r list is empty".into()));
        }
        Ok(self)
    }

    /// Expands the matrix into cells in deterministic row-major order
    /// (family-major, then traffic, then rank), each with its derived
    /// seed.
    pub fn cells(&self) -> Vec<ScenarioCell> {
        let mut out = Vec::with_capacity(self.families.len() * self.traffic.len());
        for (fi, &family) in self.families.iter().enumerate() {
            for (ti, &traffic) in self.traffic.iter().enumerate() {
                for (ri, &r) in self.heights.iter().enumerate() {
                    let seed = splitmix64(
                        self.seed
                            ^ splitmix64(fi as u64)
                            ^ splitmix64((ti as u64) << 20)
                            ^ splitmix64((ri as u64) << 40),
                    );
                    out.push(ScenarioCell {
                        family,
                        traffic,
                        r,
                        seed,
                    });
                }
            }
        }
        out
    }
}

fn parse_families(items: &[&str]) -> Result<Vec<TreeFamily>, SpecError> {
    items
        .iter()
        .map(|s| TreeFamily::parse(s).ok_or_else(|| SpecError(format!("unknown family `{s}`"))))
        .collect()
}

fn parse_traffic(items: &[&str]) -> Result<Vec<TrafficModel>, SpecError> {
    items
        .iter()
        .map(|s| {
            TrafficModel::parse(s).ok_or_else(|| SpecError(format!("unknown traffic model `{s}`")))
        })
        .collect()
}

fn parse_ranks(items: &[&str]) -> Result<Vec<u8>, SpecError> {
    items
        .iter()
        .map(|s| {
            let r: u8 = s
                .parse()
                .map_err(|_| SpecError(format!("bad rank `{s}`")))?;
            // r ≥ 11 would mean >65k-node hosts — a config typo, not a sweep.
            (1..=10)
                .contains(&r)
                .then_some(r)
                .ok_or_else(|| SpecError(format!("rank {r} out of range 1..=10")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_spec_round_trips() {
        let spec = ScenarioSpec::parse(
            "# comment\n\
             families = path, balanced, skewed:200\n\
             traffic  = uniform, dnc, hotspot:50:4   # trailing comment\n\
             r        = 3, 4\n\
             seed     = 99\n",
        )
        .unwrap();
        assert_eq!(
            spec.families,
            vec![
                TreeFamily::Path,
                TreeFamily::Balanced,
                TreeFamily::Skewed { bias: 200 }
            ]
        );
        assert_eq!(
            spec.traffic,
            vec![
                TrafficModel::Uniform,
                TrafficModel::Workload(3),
                TrafficModel::HotSpot { share: 50, mult: 4 }
            ]
        );
        assert_eq!(spec.heights, vec![3, 4]);
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.cells().len(), 3 * 3 * 2);
    }

    #[test]
    fn json_spec_parses() {
        let spec = ScenarioSpec::parse(
            r#"{"families": ["path", "uniform"], "traffic": ["zipf:2"], "r": ["3"], "seed": 5}"#,
        )
        .unwrap();
        assert_eq!(
            spec.families,
            vec![TreeFamily::Path, TreeFamily::UniformRandom]
        );
        assert_eq!(spec.traffic, vec![TrafficModel::Zipf { s: 2.0 }]);
        assert_eq!(spec.heights, vec![3]);
        assert_eq!(spec.seed, 5);
    }

    #[test]
    fn missing_keys_take_defaults() {
        let spec = ScenarioSpec::parse("seed = 1\n").unwrap();
        let dflt = ScenarioSpec::default_matrix();
        assert_eq!(spec.families, dflt.families);
        assert_eq!(spec.traffic, dflt.traffic);
        assert_eq!(spec.heights, dflt.heights);
        assert_eq!(spec.seed, 1);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(ScenarioSpec::parse("families = warthog\n").is_err());
        assert!(ScenarioSpec::parse("traffic = zipf:-2\n").is_err());
        assert!(ScenarioSpec::parse("r = 0\n").is_err());
        assert!(ScenarioSpec::parse("r = 11\n").is_err());
        assert!(ScenarioSpec::parse("volume = 11\n").is_err());
        assert!(ScenarioSpec::parse("families =\n").is_err());
        assert!(ScenarioSpec::parse("{not json").is_err());
    }

    #[test]
    fn cell_seeds_depend_on_every_coordinate() {
        let spec = ScenarioSpec::default_matrix();
        let cells = spec.cells();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "per-cell seeds must be distinct");
        // And the base seed moves all of them.
        let other = ScenarioSpec {
            seed: spec.seed + 1,
            ..spec.clone()
        };
        assert_ne!(cells[0].seed, other.cells()[0].seed);
    }

    #[test]
    fn smoke_meets_the_acceptance_floor() {
        let s = ScenarioSpec::smoke();
        assert!(s.families.len() >= 4);
        assert!(s.traffic.len() >= 3);
    }
}

//! Traffic models: how much communication each guest edge carries, and
//! which cache keys a serving workload draws.
//!
//! A traffic model has two faces:
//!
//! * [`TrafficModel::edge_demand`] — per-guest-edge demand weights for
//!   traffic-weighted congestion scoring
//!   ([`xtree_sim::weighted_congestion`]). Demand is indexed by the
//!   child endpoint of each edge (`demand[v]` weights `parent(v) → v`,
//!   the root slot stays 0), so a demand vector always has exactly
//!   `tree.len()` entries.
//! * [`TrafficModel::key_sampler`] — the matching cache-key distribution
//!   for the serving-layer load generator, so "the bench saw Zipf
//!   traffic" means the same model on both the scoring and serving axes.

use crate::splitmix64;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use xtree_sim::workload::{self, HostMap, WORKLOADS};
use xtree_trees::{BinaryTree, NodeId};

/// Default Zipf exponent: the classic "just past harmonic" skew of web
/// caches.
pub const DEFAULT_ZIPF_S: f64 = 1.1;

/// Default hot-spot share (percent of guest nodes inside the hot
/// subtree) and demand multiplier.
pub const DEFAULT_HOTSPOT: (u8, u32) = (25, 16);

/// Default diurnal profile: cycles across the depth/time axis, and the
/// peak-to-trough demand ratio.
pub const DEFAULT_DIURNAL: (u32, u32) = (4, 8);

/// How traffic distributes over the guest tree (for congestion scoring)
/// and over cache keys (for the load generator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficModel {
    /// Unit demand on every guest edge; uniform keys. The baseline —
    /// weighting with it reproduces the unweighted congestion score.
    Uniform,
    /// Demand = how many messages the canonical workload (an index into
    /// [`WORKLOADS`]: broadcast, reduce, exchange, dnc) actually sends
    /// across each guest edge, counted from the generated rounds.
    Workload(usize),
    /// Zipf(`s`)-distributed demand over a seeded random ranking of the
    /// guest edges (head edges carry hundreds of times the tail's
    /// demand); Zipf-distributed cache keys on the serving side.
    Zipf {
        /// Zipf exponent; larger is more skewed.
        s: f64,
    },
    /// A seeded hot subtree covering ≈`share`% of the guest nodes whose
    /// edges carry `mult`× demand; on the serving side, hot request
    /// windows that hammer a single key.
    HotSpot {
        /// Percent (1..=100) of guest nodes inside the hot subtree.
        share: u8,
        /// Demand multiplier on hot edges.
        mult: u32,
    },
    /// Diurnal ramp: demand oscillates between 1 and `peak` along the
    /// round/depth axis with `periods` full cycles; on the serving side,
    /// the effective key-pool breathes between 1 key and the full pool.
    Diurnal {
        /// Full ramp cycles across the axis.
        periods: u32,
        /// Peak-to-trough demand ratio.
        peak: u32,
    },
}

impl TrafficModel {
    /// A sweep-friendly canonical set: the baseline, one program-derived
    /// model, and the three skewed serving models at their defaults.
    pub fn canonical() -> Vec<TrafficModel> {
        vec![
            TrafficModel::Uniform,
            TrafficModel::Workload(3), // dnc — the paper's motivating program
            TrafficModel::Zipf { s: DEFAULT_ZIPF_S },
            TrafficModel::HotSpot {
                share: DEFAULT_HOTSPOT.0,
                mult: DEFAULT_HOTSPOT.1,
            },
            TrafficModel::Diurnal {
                periods: DEFAULT_DIURNAL.0,
                peak: DEFAULT_DIURNAL.1,
            },
        ]
    }

    /// Round-trippable label (`uniform`, `dnc`, `zipf:1.1`,
    /// `hotspot:25:16`, `diurnal:4:8`), accepted back by [`Self::parse`].
    pub fn label(&self) -> String {
        match *self {
            TrafficModel::Uniform => "uniform".into(),
            TrafficModel::Workload(idx) => WORKLOADS[idx].into(),
            TrafficModel::Zipf { s } => format!("zipf:{s}"),
            TrafficModel::HotSpot { share, mult } => format!("hotspot:{share}:{mult}"),
            TrafficModel::Diurnal { periods, peak } => format!("diurnal:{periods}:{peak}"),
        }
    }

    /// Parses a traffic label: `uniform`, a workload name
    /// (`broadcast`/`reduce`/`exchange`/`dnc`), `zipf[:s]`,
    /// `hotspot[:share:mult]`, or `diurnal[:periods:peak]` (bare names
    /// take the documented defaults). Returns `None` for anything else,
    /// including out-of-range parameters.
    pub fn parse(s: &str) -> Option<TrafficModel> {
        if s == "uniform" {
            return Some(TrafficModel::Uniform);
        }
        if let Some(idx) = WORKLOADS.iter().position(|w| *w == s) {
            return Some(TrafficModel::Workload(idx));
        }
        let mut parts = s.split(':');
        let head = parts.next()?;
        let rest: Vec<&str> = parts.collect();
        match (head, rest.as_slice()) {
            ("zipf", []) => Some(TrafficModel::Zipf { s: DEFAULT_ZIPF_S }),
            ("zipf", [s]) => {
                let s: f64 = s.parse().ok()?;
                (s > 0.0 && s.is_finite()).then_some(TrafficModel::Zipf { s })
            }
            ("hotspot", []) => Some(TrafficModel::HotSpot {
                share: DEFAULT_HOTSPOT.0,
                mult: DEFAULT_HOTSPOT.1,
            }),
            ("hotspot", [share, mult]) => {
                let share: u8 = share.parse().ok()?;
                let mult: u32 = mult.parse().ok()?;
                ((1..=100).contains(&share) && mult >= 1)
                    .then_some(TrafficModel::HotSpot { share, mult })
            }
            ("diurnal", []) => Some(TrafficModel::Diurnal {
                periods: DEFAULT_DIURNAL.0,
                peak: DEFAULT_DIURNAL.1,
            }),
            ("diurnal", [periods, peak]) => {
                let periods: u32 = periods.parse().ok()?;
                let peak: u32 = peak.parse().ok()?;
                (periods >= 1 && peak >= 1).then_some(TrafficModel::Diurnal { periods, peak })
            }
            _ => None,
        }
    }

    /// Per-guest-edge demand under this model, indexed by the child
    /// endpoint (`demand[v]` weights the edge `parent(v) → v`; the root
    /// slot stays 0). Deterministic in `(tree, seed)`.
    pub fn edge_demand(&self, tree: &BinaryTree, seed: u64) -> Vec<u64> {
        match *self {
            TrafficModel::Uniform => {
                let mut d = vec![1u64; tree.len()];
                d[tree.root().index()] = 0;
                d
            }
            TrafficModel::Workload(idx) => workload_demand(tree, idx),
            TrafficModel::Zipf { s } => zipf_demand(tree, s, seed),
            TrafficModel::HotSpot { share, mult } => hotspot_demand(tree, share, mult, seed),
            TrafficModel::Diurnal { periods, peak } => diurnal_demand(tree, periods, peak),
        }
    }

    /// The matching cache-key distribution over `pool` keys for the
    /// serving-layer load generator. Communication-shape models
    /// ([`Self::Uniform`], [`Self::Workload`]) draw keys uniformly.
    pub fn key_sampler(&self, pool: usize, seed: u64) -> KeySampler {
        assert!(pool >= 1, "key pool must be non-empty");
        let cum = match *self {
            TrafficModel::Zipf { s } => zipf_cumulative(s, pool),
            _ => Vec::new(),
        };
        KeySampler {
            model: *self,
            pool,
            seed,
            cum,
        }
    }
}

/// Guest nodes as their own hosts: lets the workload generators run
/// without an embedding, so demand derivation sees pure guest traffic.
struct GuestIdentity;

impl HostMap for GuestIdentity {
    fn host_of(&self, v: NodeId) -> u32 {
        v.index() as u32
    }
}

/// Counts, per guest edge, the messages the canonical workload program
/// sends across it (broadcast/reduce cross each edge once, exchange and
/// dnc twice — but counted from the actual rounds, not assumed).
fn workload_demand(tree: &BinaryTree, idx: usize) -> Vec<u64> {
    let mut demand = vec![0u64; tree.len()];
    for round in workload::rounds_for(tree, &GuestIdentity, idx) {
        for m in round {
            // Each message travels one guest edge; charge its child side.
            let (src, dst) = (NodeId(m.src), NodeId(m.dst));
            let child = if tree.parent(dst) == Some(src) {
                dst
            } else {
                debug_assert_eq!(
                    tree.parent(src),
                    Some(dst),
                    "workload message must follow a guest edge"
                );
                src
            };
            demand[child.index()] += 1;
        }
    }
    demand
}

/// The Zipf cumulative distribution over ranks `0..n`.
fn zipf_cumulative(s: f64, n: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for k in 1..=n {
        total += (k as f64).powf(-s);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    cum
}

/// Zipf demand: guest edges are ranked by a seeded shuffle, and rank `k`
/// carries `max(1, round(1000 · (k+1)^{-s}))` units — the head edge gets
/// 1000, the tail decays polynomially but never below 1.
fn zipf_demand(tree: &BinaryTree, s: f64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges: Vec<NodeId> = tree.nodes().filter(|&v| tree.parent(v).is_some()).collect();
    for i in (1..edges.len()).rev() {
        let j = rng.random_range(0..=i);
        edges.swap(i, j);
    }
    let mut demand = vec![0u64; tree.len()];
    for (rank, v) in edges.into_iter().enumerate() {
        let w = (1000.0 * ((rank + 1) as f64).powf(-s)).round() as u64;
        demand[v.index()] = w.max(1);
    }
    demand
}

/// Hot-spot demand: a seeded proper subtree covering at least `share`%
/// of the guest nodes (when one exists) has all its edges multiplied by
/// `mult`. The root never qualifies, so a cold edge always remains.
fn hotspot_demand(tree: &BinaryTree, share: u8, mult: u32, seed: u64) -> Vec<u64> {
    let n = tree.len();
    if n <= 1 {
        return vec![0; n];
    }
    let sizes = tree.subtree_sizes();
    let want = (n * usize::from(share)).div_ceil(100).max(1);
    let mut cands: Vec<NodeId> = tree
        .nodes()
        .filter(|&v| tree.parent(v).is_some() && sizes[v.index()] as usize >= want)
        .collect();
    if cands.is_empty() {
        // `share` outgrows every proper subtree: best effort, take the
        // largest one (deterministic — nodes() order breaks ties).
        let best = tree
            .nodes()
            .filter(|&v| tree.parent(v).is_some())
            .max_by_key(|&v| sizes[v.index()])
            .expect("n ≥ 2 has a non-root node");
        cands.push(best);
    }
    let hot = cands[(splitmix64(seed) % cands.len() as u64) as usize];
    // Mark the hot subtree.
    let mut demand = vec![1u64; n];
    demand[tree.root().index()] = 0;
    let mut stack = vec![hot];
    while let Some(v) = stack.pop() {
        if tree.parent(v).is_some() {
            demand[v.index()] = u64::from(mult);
        }
        stack.extend(tree.children(v));
    }
    demand
}

/// The triangle ramp shared by the demand and key faces of
/// [`TrafficModel::Diurnal`]: position `t` of a cycle of length `cycle`
/// mapped to `0..=1000` (0 at the trough, 1000 at mid-cycle peak).
fn ramp_milli(t: u64, cycle: u64) -> u64 {
    let t = t % cycle;
    1000 * 2 * t.min(cycle - t) / cycle
}

/// Diurnal demand: edges at depth `d` carry the intensity of their round
/// in a broadcast-like program whose traffic ramps between 1 and `peak`
/// with `periods` cycles across the depth axis.
fn diurnal_demand(tree: &BinaryTree, periods: u32, peak: u32) -> Vec<u64> {
    let mut depth = vec![0u64; tree.len()];
    let mut max_depth = 0;
    for v in tree.preorder() {
        if let Some(p) = tree.parent(v) {
            depth[v.index()] = depth[p.index()] + 1;
            max_depth = max_depth.max(depth[v.index()]);
        }
    }
    // An even cycle makes the triangle ramp actually reach the peak.
    let cycle = (max_depth + 1).div_ceil(u64::from(periods)).max(2);
    let cycle = cycle + (cycle & 1);
    let mut demand = vec![0u64; tree.len()];
    for v in tree.nodes() {
        if tree.parent(v).is_some() {
            let m = ramp_milli(depth[v.index()], cycle);
            demand[v.index()] = 1 + u64::from(peak - 1) * m / 1000;
        }
    }
    demand
}

/// Requests per hot/cold window of the [`TrafficModel::HotSpot`] key
/// stream: long enough that a hot window visibly hammers its key, short
/// enough that a bench of a few hundred requests sees several windows.
const HOTSPOT_WINDOW: u64 = 32;

/// Requests per full diurnal cycle of the [`TrafficModel::Diurnal`] key
/// stream.
const DIURNAL_CYCLE: u64 = 256;

/// A deterministic cache-key stream: `rank(i)` is the key index of the
/// `i`-th request, a pure function of `(model, pool, seed, i)` so
/// concurrent connections can each walk their own slice of the stream.
#[derive(Clone, Debug)]
pub struct KeySampler {
    model: TrafficModel,
    pool: usize,
    seed: u64,
    /// Precomputed Zipf CDF (empty for other models).
    cum: Vec<f64>,
}

impl KeySampler {
    /// Number of distinct keys this stream draws from.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// The key index (in `0..pool`) of request `i`.
    pub fn rank(&self, i: u64) -> usize {
        let uniform = |x: u64| (splitmix64(self.seed ^ x) % self.pool as u64) as usize;
        match self.model {
            TrafficModel::Uniform | TrafficModel::Workload(_) => uniform(i),
            TrafficModel::Zipf { .. } => {
                let bits = splitmix64(self.seed ^ i);
                let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
                self.cum.partition_point(|&c| c < u).min(self.pool - 1)
            }
            TrafficModel::HotSpot { share, .. } => {
                let w = i / HOTSPOT_WINDOW;
                let dice = splitmix64(self.seed ^ 0x1407_5B07 ^ w);
                if dice % 100 < u64::from(share) {
                    // A hot window: every request hits the window's key.
                    (splitmix64(self.seed ^ w) % self.pool as u64) as usize
                } else {
                    uniform(i)
                }
            }
            TrafficModel::Diurnal { periods, .. } => {
                let t = i.wrapping_mul(u64::from(periods));
                let m = ramp_milli(t, DIURNAL_CYCLE);
                // The effective pool breathes between 1 key and all of
                // them: daytime traffic is concentrated, nighttime flat.
                let eff = 1 + (self.pool as u64 - 1) * m / 1000;
                (splitmix64(self.seed ^ i) % eff) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtree_trees::TreeFamily;

    fn tree() -> BinaryTree {
        TreeFamily::RandomBst.generate_seeded(200, 11)
    }

    #[test]
    fn labels_round_trip() {
        for m in TrafficModel::canonical() {
            assert_eq!(TrafficModel::parse(&m.label()), Some(m), "{m:?}");
        }
        assert_eq!(
            TrafficModel::parse("zipf"),
            Some(TrafficModel::Zipf { s: DEFAULT_ZIPF_S })
        );
        assert_eq!(
            TrafficModel::parse("hotspot:50:4"),
            Some(TrafficModel::HotSpot { share: 50, mult: 4 })
        );
        assert_eq!(TrafficModel::parse("hotspot:0:4"), None);
        assert_eq!(TrafficModel::parse("zipf:-1"), None);
        assert_eq!(TrafficModel::parse("diurnal:0:8"), None);
        assert_eq!(TrafficModel::parse("weird"), None);
        assert_eq!(
            TrafficModel::parse("broadcast"),
            Some(TrafficModel::Workload(0))
        );
    }

    #[test]
    fn uniform_demand_is_all_ones_off_root() {
        let t = tree();
        let d = TrafficModel::Uniform.edge_demand(&t, 3);
        assert_eq!(d.len(), t.len());
        assert_eq!(d[t.root().index()], 0);
        for v in t.nodes() {
            if t.parent(v).is_some() {
                assert_eq!(d[v.index()], 1);
            }
        }
    }

    #[test]
    fn workload_demand_counts_real_messages() {
        let t = tree();
        // Broadcast and reduce cross every edge exactly once; exchange
        // and dnc exactly twice.
        for (idx, per_edge) in [(0u64, 1u64), (1, 1), (2, 2), (3, 2)] {
            let d = TrafficModel::Workload(idx as usize).edge_demand(&t, 0);
            for v in t.nodes() {
                let want = if t.parent(v).is_some() { per_edge } else { 0 };
                assert_eq!(d[v.index()], want, "workload {idx} node {v:?}");
            }
        }
    }

    #[test]
    fn zipf_demand_head_beats_tail() {
        let t = tree();
        let d = TrafficModel::Zipf { s: 1.1 }.edge_demand(&t, 9);
        let max = d.iter().max().unwrap();
        let min_edge = t
            .nodes()
            .filter(|&v| t.parent(v).is_some())
            .map(|v| d[v.index()])
            .min()
            .unwrap();
        assert_eq!(*max, 1000, "head edge carries the full unit");
        assert!(min_edge >= 1, "tail never drops to zero");
        assert!(*max / min_edge.max(1) >= 100, "three decades of skew");
        // Deterministic in the seed.
        assert_eq!(d, TrafficModel::Zipf { s: 1.1 }.edge_demand(&t, 9));
        assert_ne!(d, TrafficModel::Zipf { s: 1.1 }.edge_demand(&t, 10));
    }

    #[test]
    fn hotspot_demand_marks_a_subtree() {
        let t = tree();
        let model = TrafficModel::HotSpot {
            share: 25,
            mult: 16,
        };
        let d = model.edge_demand(&t, 4);
        let hot: Vec<NodeId> = t.nodes().filter(|&v| d[v.index()] == 16).collect();
        assert!(!hot.is_empty(), "someone must be hot");
        // Hot nodes form one connected subtree: each hot node's parent is
        // hot or is the subtree's crown.
        let crowns: Vec<&NodeId> = hot
            .iter()
            .filter(|&&v| t.parent(v).map(|p| d[p.index()] != 16).unwrap_or(true))
            .collect();
        assert_eq!(crowns.len(), 1, "exactly one hot crown");
        // Coverage is in the right ballpark: ≥ share% of nodes, not all.
        assert!(hot.len() + 1 >= t.len() / 4, "hot covers ≈ share%");
        assert!(hot.len() < t.len() - 1, "cold edges remain");
    }

    #[test]
    fn diurnal_demand_stays_in_band_and_oscillates() {
        let t = TreeFamily::Path.generate_seeded(100, 0);
        let model = TrafficModel::Diurnal {
            periods: 4,
            peak: 8,
        };
        let d = model.edge_demand(&t, 0);
        let edges: Vec<u64> = t
            .nodes()
            .filter(|&v| t.parent(v).is_some())
            .map(|v| d[v.index()])
            .collect();
        assert!(edges.iter().all(|&w| (1..=8).contains(&w)));
        assert!(edges.contains(&1), "trough reached");
        assert!(edges.contains(&8), "peak reached");
        // More than one cycle: the peak appears at several depths.
        assert!(edges.iter().filter(|&&w| w == 8).count() >= 3);
    }

    #[test]
    fn key_streams_are_deterministic_and_in_range() {
        for m in TrafficModel::canonical() {
            let a = m.key_sampler(64, 42);
            let b = m.key_sampler(64, 42);
            for i in 0..2000 {
                let k = a.rank(i);
                assert!(k < 64, "{m:?} rank {k}");
                assert_eq!(k, b.rank(i), "{m:?} must be stateless");
            }
        }
    }

    #[test]
    fn zipf_keys_skew_toward_the_head() {
        let s = TrafficModel::Zipf { s: 1.1 }.key_sampler(64, 7);
        let mut counts = vec![0usize; 64];
        for i in 0..4000 {
            counts[s.rank(i)] += 1;
        }
        let head: usize = counts[..4].iter().sum();
        let tail: usize = counts[32..].iter().sum();
        assert!(
            head > tail,
            "top-4 keys ({head}) must out-draw the bottom half ({tail})"
        );
    }

    #[test]
    fn hotspot_keys_have_hot_windows() {
        let s = TrafficModel::HotSpot {
            share: 50,
            mult: 16,
        }
        .key_sampler(64, 7);
        // In a hot window all 32 requests agree on one key.
        let hot_windows = (0..100u64)
            .filter(|w| {
                let base = w * HOTSPOT_WINDOW;
                let first = s.rank(base);
                (1..HOTSPOT_WINDOW).all(|j| s.rank(base + j) == first)
            })
            .count();
        assert!(
            (20..=80).contains(&hot_windows),
            "≈50% of windows hot, saw {hot_windows}"
        );
    }

    #[test]
    fn diurnal_keys_breathe() {
        let s = TrafficModel::Diurnal {
            periods: 1,
            peak: 8,
        }
        .key_sampler(64, 7);
        // Troughs pin to key 0; peaks spread across the pool.
        assert_eq!(s.rank(0), 0, "trough concentrates on one key");
        let mid: Vec<usize> = (120..136).map(|i| s.rank(i)).collect();
        assert!(
            mid.iter().any(|&k| k >= 8),
            "mid-cycle spreads out: {mid:?}"
        );
    }
}

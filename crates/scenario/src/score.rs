//! Scoring one scenario cell: generate the family's tree, embed it with
//! the Theorem-1 construction, derive the traffic model's per-edge
//! demand, and report traffic-weighted congestion next to the classic
//! unweighted score.

use crate::spec::{ScenarioCell, ScenarioSpec};
use crate::traffic::TrafficModel;
use xtree_core::{metrics, theorem1};
use xtree_json::Value;
use xtree_sim::{congestion, weighted_congestion, Network, SimError};
use xtree_topology::XTree;
use xtree_trees::generate::theorem1_size;

/// Everything measured for one (family × traffic × size) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Tree family label (e.g. `skewed:240`).
    pub family: String,
    /// Traffic model label (e.g. `zipf:1.1`).
    pub traffic: String,
    /// Theorem-1 rank of the cell.
    pub r: u8,
    /// Guest tree size, `16·(2^{r+1} − 1)`.
    pub nodes: usize,
    /// The cell's derived seed (reproduces the tree and the demand).
    pub seed: u64,
    /// Classic unweighted congestion: guest edges crossing the busiest
    /// host link.
    pub congestion: u32,
    /// Traffic-weighted congestion: demand units crossing the busiest
    /// host link.
    pub weighted_congestion: u64,
    /// Total demand over all guest edges (normalisation denominator).
    pub demand_total: u64,
    /// Largest single-edge demand (can exceed the weighted score when
    /// that edge stays inside one host vertex).
    pub demand_max: u64,
    /// Embedding dilation (paper bound: ≤ 3 plus the documented +2).
    pub dilation: u32,
    /// Embedding load (paper bound: 16).
    pub max_load: u32,
}

impl CellReport {
    /// The report as a JSON object (one row of `BENCH_scenarios.json`).
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("family", self.family.as_str())
            .with("traffic", self.traffic.as_str())
            .with("r", u64::from(self.r))
            .with("nodes", self.nodes as u64)
            // Hex string: per-cell seeds use the full u64 range, which JSON
            // numbers (and the `Value` float fallback) cannot carry exactly.
            .with("seed", format!("{:#018x}", self.seed))
            .with("congestion", u64::from(self.congestion))
            .with("weighted_congestion", self.weighted_congestion)
            .with("demand_total", self.demand_total)
            .with("demand_max", self.demand_max)
            .with("dilation", u64::from(self.dilation))
            .with("max_load", u64::from(self.max_load))
    }
}

/// Scores one cell: seeded tree → Theorem-1 embedding → next-hop routing
/// on the optimal X-tree host → unweighted and traffic-weighted
/// congestion. Deterministic in the cell (no ambient randomness).
pub fn run_cell(cell: &ScenarioCell) -> Result<CellReport, SimError> {
    let n = theorem1_size(cell.r);
    let tree = cell.family.generate_seeded(n, cell.seed);
    let built = theorem1::embed(&tree);
    let stats = metrics::evaluate(&tree, &built.emb);
    let net = Network::xtree(&XTree::new(built.emb.height));
    let demand = cell.traffic.edge_demand(&tree, cell.seed);
    let weighted = weighted_congestion(&net, &tree, &built.emb, &demand)?;
    let unweighted = congestion(&net, &tree, &built.emb)?;
    Ok(CellReport {
        family: cell.family.label(),
        traffic: cell.traffic.label(),
        r: cell.r,
        nodes: n,
        seed: cell.seed,
        congestion: unweighted,
        weighted_congestion: weighted,
        demand_total: demand.iter().sum(),
        demand_max: demand.iter().copied().max().unwrap_or(0),
        dilation: stats.dilation,
        max_load: stats.max_load,
    })
}

/// Runs every cell of the spec's matrix, serially and in spec order, so
/// the output is byte-identical across runs of the same spec.
pub fn run_matrix(spec: &ScenarioSpec) -> Result<Vec<CellReport>, SimError> {
    spec.cells().iter().map(run_cell).collect()
}

/// Wraps the reports in the `BENCH_scenarios.json` document shape:
/// the spec's axes up front, then one row per cell.
pub fn matrix_to_json(spec: &ScenarioSpec, reports: &[CellReport]) -> Value {
    let labels = |it: Vec<String>| Value::Array(it.into_iter().map(Value::Str).collect());
    Value::object()
        .with(
            "families",
            labels(spec.families.iter().map(|f| f.label()).collect()),
        )
        .with(
            "traffic",
            labels(spec.traffic.iter().map(TrafficModel::label).collect()),
        )
        .with(
            "r",
            Value::Array(
                spec.heights
                    .iter()
                    .map(|&r| Value::Int(i64::from(r)))
                    .collect(),
            ),
        )
        .with("seed", spec.seed)
        .with(
            "cells",
            Value::Array(reports.iter().map(CellReport::to_json).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use xtree_trees::TreeFamily;

    fn cell(traffic: TrafficModel) -> ScenarioCell {
        ScenarioCell {
            family: TreeFamily::UniformRandom,
            traffic,
            r: 3,
            seed: 1234,
        }
    }

    #[test]
    fn uniform_traffic_reproduces_unweighted_congestion() {
        let report = run_cell(&cell(TrafficModel::Uniform)).unwrap();
        assert_eq!(report.weighted_congestion, u64::from(report.congestion));
        assert_eq!(report.nodes, 240);
        assert_eq!(report.demand_max, 1);
        assert_eq!(report.demand_total, 239, "one unit per non-root node");
    }

    #[test]
    fn weighted_score_at_least_unweighted_under_skewed_demand() {
        for traffic in [
            TrafficModel::Zipf { s: 1.1 },
            TrafficModel::HotSpot {
                share: 25,
                mult: 16,
            },
            TrafficModel::Workload(3),
        ] {
            let report = run_cell(&cell(traffic)).unwrap();
            assert!(
                report.weighted_congestion >= u64::from(report.congestion),
                "{traffic:?}: weighted {} < unweighted {}",
                report.weighted_congestion,
                report.congestion
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = ScenarioSpec::smoke();
        let a = run_matrix(&spec).unwrap();
        let b = run_matrix(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.cells().len());
        let doc = xtree_json::to_string_pretty(&matrix_to_json(&spec, &a));
        let doc2 = xtree_json::to_string_pretty(&matrix_to_json(&spec, &b));
        assert_eq!(doc, doc2, "document rendering must be byte-stable");
    }

    #[test]
    fn paper_bounds_hold_across_the_smoke_matrix() {
        for report in run_matrix(&ScenarioSpec::smoke()).unwrap() {
            assert!(
                report.max_load <= 16,
                "{}: load {}",
                report.family,
                report.max_load
            );
            assert!(
                report.dilation <= 5,
                "{}: dilation {}",
                report.family,
                report.dilation
            );
        }
    }
}

//! Offline subset of `criterion`.
//!
//! Covers the surface this workspace's benches use: `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` entry points. Statistics are deliberately simple —
//! per-benchmark mean over timed batches — and `--test` runs every
//! benchmark body exactly once, which is what the CI smoke job relies on.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per process.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo-bench forwards that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let test_mode = self.test_mode;
        if self.matches(name) {
            run_one(name, test_mode, 100, f);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Throughput annotation; recorded per benchmark and echoed in output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to gather per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion.test_mode, self.sample_size, |b| {
                f(b, input)
            });
        }
        self
    }

    /// Benchmarks `f` with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion.test_mode, self.sample_size, f);
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark identifier: function name plus parameter rendering.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, or runs it once in `--test` mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up: discover an iteration count worth ~10ms per sample.
        let mut per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(10) || per_sample >= 1 << 20 {
                break;
            }
            per_sample *= 2;
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            for _ in 0..per_sample {
                black_box(routine());
            }
        }
        self.elapsed = start.elapsed();
        self.iters = per_sample * self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, samples: usize, mut f: F) {
    let mut b = Bencher {
        test_mode,
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!(
            "{id:<55} {:>12} / iter ({} iters)",
            fmt_ns(per_iter),
            b.iters
        );
    } else {
        println!("{id:<55} (no measurement: Bencher::iter never called)");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut hits = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("a", 1), &3u32, |b, &x| {
                b.iter(|| x + 1);
                hits += 1;
            });
            g.bench_function("b", |b| b.iter(|| 2 + 2));
            g.finish();
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match_me".into()),
        };
        let mut hits = 0;
        c.bench_function("other", |b| {
            b.iter(|| 1);
            hits += 1;
        });
        c.bench_function("match_me_exactly", |b| {
            b.iter(|| 1);
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}

//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] plumbing, [`Rng::random_range`] over integer ranges,
//! and the two slice helpers ([`seq::IndexedRandom::choose`],
//! [`seq::SliceRandom::shuffle`]). Semantics follow the upstream crate
//! (`seed_from_u64` seeds via SplitMix64, ranges reject by widening);
//! exact output streams are only guaranteed to be deterministic, not
//! bit-identical to upstream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// `rand_core` uses), then builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high]` (inclusive ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit (or wider) span: a raw word is uniform.
                    return low.wrapping_add(rng.next_u64() as $t);
                }
                let span = span as u64;
                // Rejection sampling on the top zone to stay unbiased.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Internal helper: `x - 1` for turning exclusive ends inclusive.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`choose`, `shuffle`).

    use super::{Rng, RngCore};

    /// Random selection from indexable collections.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.random_range(0..=255);
            let _ = w;
            let x: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Counter(7));
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
        assert_ne!(v, s, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let v = [1u32, 2, 3];
        let mut rng = Counter(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline subset of `rayon`: `par_iter()` over slices with `map`,
//! `collect`, `sum`, and `for_each`, executed on `std::thread::scope`
//! with one chunk per available core.
//!
//! The scheduling model is simpler than rayon's work stealing — the input
//! is split into `available_parallelism()` contiguous chunks up front —
//! which is the right shape for this workspace's sweeps: many
//! similarly-sized, independent (tree, embedding) cases. Output order
//! always matches input order.

use std::thread;

/// Number of worker threads to fan out to (respects `RAYON_NUM_THREADS`).
fn thread_count() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |p| p.get())
}

/// Order-preserving parallel map over a slice.
fn parallel_map<'a, T, R, F>(slice: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = slice.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return slice.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(n);
    thread::scope(|s| {
        let handles: Vec<_> = slice
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// A pending parallel iteration over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.slice, |t| f(t));
    }
}

/// A mapped parallel iteration, ready to collect or reduce.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map and gathers results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(parallel_map(self.slice, self.f))
    }

    /// Runs the map and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        parallel_map(self.slice, self.f).into_iter().sum()
    }

    /// Runs the map and returns the maximum result.
    pub fn max(self) -> Option<R>
    where
        R: Ord,
    {
        parallel_map(self.slice, self.f).into_iter().max()
    }
}

/// Collection types a parallel map can gather into.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Types offering `par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: 'a;

    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

pub mod prelude {
    //! The customary glob import.
    pub use crate::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let input: Vec<usize> = (0..1000).collect();
        let s: usize = input.par_iter().map(|&x| x + 1).sum();
        assert_eq!(s, (1..=1000).sum::<usize>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_runs_everywhere() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        let input: Vec<u32> = (0..257).collect();
        input.par_iter().for_each(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 257);
    }
}

//! Offline subset of `proptest`.
//!
//! Supports what this workspace's property tests use: integer-range and
//! `any::<T>()` strategies, tuple composition, `prop_map`,
//! `prop::collection::vec`, the
//! `proptest!` macro with an optional `proptest_config` attribute, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` family. No shrinking: a failing case panics with the
//! inputs' `Debug` left to the assertion message, and the per-test RNG is
//! seeded from the test name, so failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// A `prop_assert*` failed; the whole test fails.
    Fail(String),
}

/// Number of cases to run per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases that must pass for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic per-test generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every run replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(16) + 256,
                        "too many cases rejected by prop_assume!"
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", passed + 1, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} == {} ({:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The customary glob import.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u8..=255) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
        }

        #[test]
        fn tuples_and_map(v in (1u32..5, any::<u16>()).prop_map(|(a, b)| u64::from(a) + u64::from(b))) {
            prop_assert!(v >= 1);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Offline ChaCha-based RNG for the workspace's vendored `rand` subset.
//!
//! Implements the genuine ChaCha8 block function (RFC 8439 quarter-round,
//! 8 double-rounds) keyed from a 32-byte seed. The word stream is
//! deterministic across platforms, which is all the experiment harness
//! relies on — seeds pin tree generation, not upstream bit-exactness.

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha RNG with 8 double-rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (RFC 8439 layout).
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut work = self.state;
        for _ in 0..4 {
            quarter_round(&mut work, 0, 4, 8, 12);
            quarter_round(&mut work, 1, 5, 9, 13);
            quarter_round(&mut work, 2, 6, 10, 14);
            quarter_round(&mut work, 3, 7, 11, 15);
            quarter_round(&mut work, 0, 5, 10, 15);
            quarter_round(&mut work, 1, 6, 11, 12);
            quarter_round(&mut work, 2, 7, 8, 13);
            quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(work.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = ChaCha8Rng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: bit balance over a long stream.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 24];
        a.fill_bytes(&mut buf);
        let mut expect = [0u8; 24];
        for chunk in expect.chunks_exact_mut(8) {
            chunk.copy_from_slice(&b.next_u64().to_le_bytes());
        }
        assert_eq!(buf, expect);
    }
}

//! Offline stand-in for `smallvec`: same `SmallVec<[T; N]>` type syntax
//! and API subset, backed by a plain `Vec`. The inline-storage
//! optimisation is dropped — call sites keep their semantics, and the
//! collections involved are tiny enough that the allocation difference is
//! noise next to the workloads this workspace benchmarks.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Marker trait letting `SmallVec<[T; N]>` spell an item type.
pub trait Array {
    /// Element type of the backing array.
    type Item;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
}

/// A growable vector with the `smallvec` API shape.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// An empty vector.
    #[inline]
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// An empty vector with reserved capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Removes and returns the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Converts into a plain `Vec`.
    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }

    /// Keeps only elements satisfying the predicate.
    pub fn retain<F: FnMut(&mut A::Item) -> bool>(&mut self, f: F) {
        self.inner.retain_mut(f);
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];

    #[inline]
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// `smallvec![a, b, c]` and `smallvec![x; n]` construction.
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)*
        v
    }};
    ($x:expr; $n:expr) => {{
        let mut v = $crate::SmallVec::with_capacity($n);
        for _ in 0..$n { v.push($x.clone()); }
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut v: SmallVec<[u32; 2]> = SmallVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], 2);
        assert_eq!(v.iter().sum::<u32>(), 6);
        assert_eq!(v.pop(), Some(3));
        let w: SmallVec<[u32; 2]> = [1, 2].into_iter().collect();
        assert_eq!(v, w);
    }

    #[test]
    fn macro_forms() {
        let v: SmallVec<[u8; 4]> = smallvec![1, 2, 3];
        assert_eq!(&*v, &[1, 2, 3]);
        let w: SmallVec<[u8; 4]> = smallvec![7; 3];
        assert_eq!(&*w, &[7, 7, 7]);
    }
}

//! Integration sweep: every theorem's bound, across tree families, host
//! sizes, and seeds. This is the repo's end-to-end statement that the
//! paper's claims hold for the implementation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{evaluate, hypercube, theorem1, theorem2, universal::UniversalGraph};
use xtree::topology::Graph;
use xtree::trees::{theorem1_size, theorem3_size, TreeFamily};

#[test]
fn theorem1_bounds_across_families_and_heights() {
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    for r in 1..=6u8 {
        for family in TreeFamily::ALL {
            let tree = family.generate(theorem1_size(r), &mut rng);
            let res = theorem1::embed(&tree);
            let s = evaluate(&tree, &res.emb);
            assert!(
                s.dilation <= 3,
                "r={r} {family:?}: dilation {} > 3",
                s.dilation
            );
            assert_eq!(s.max_load, 16, "r={r} {family:?}");
            // Optimal expansion: host is the smallest X-tree at load 16.
            assert_eq!(res.emb.host_len() * 16, tree.len(), "r={r} {family:?}");
            assert_eq!(s.condition3_violations, 0, "r={r} {family:?}");
            assert_eq!(s.condition4_violations, 0, "r={r} {family:?}");
        }
    }
}

#[test]
fn theorem2_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for r in 1..=5u8 {
        for family in [
            TreeFamily::Path,
            TreeFamily::RandomBst,
            TreeFamily::RandomAttach,
        ] {
            let tree = family.generate(theorem1_size(r), &mut rng);
            let base = theorem1::embed(&tree).emb;
            let inj = theorem2::injectivize(&base);
            let s = evaluate(&tree, &inj);
            assert!(s.injective, "r={r} {family:?}");
            assert!(
                s.dilation <= 11,
                "r={r} {family:?}: dilation {}",
                s.dilation
            );
            assert_eq!(inj.height, base.height + 4);
        }
    }
}

#[test]
fn theorem3_and_corollary_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for r in 2..=6u8 {
        for family in [
            TreeFamily::Caterpillar,
            TreeFamily::RandomSplit,
            TreeFamily::Broom,
        ] {
            let tree = family.generate(theorem3_size(r), &mut rng);
            let q = hypercube::embed_theorem3(&tree);
            assert_eq!(q.dim, r, "optimal hypercube");
            assert!(q.max_load() <= 16);
            assert!(
                q.dilation(&tree) <= 4,
                "r={r} {family:?}: {}",
                q.dilation(&tree)
            );

            let q8 = hypercube::embed_corollary8(&tree);
            assert_eq!(q8.dim, r + 4);
            assert!(q8.is_injective());
            assert!(
                q8.dilation(&tree) <= 8,
                "r={r} {family:?}: {}",
                q8.dilation(&tree)
            );
        }
    }
}

#[test]
fn theorem4_universal_graph() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for r in 1..=4u8 {
        let g = UniversalGraph::new(r);
        assert!(g.graph().max_degree() <= 415);
        let n = theorem1_size(r);
        assert_eq!(g.graph().node_count(), n);
        for family in TreeFamily::ALL {
            let tree = family.generate(n, &mut rng);
            let emb = theorem1::embed(&tree).emb;
            let assignment = g.slot_assignment(&emb);
            assert!(
                g.subgraph_violations(&tree, &assignment).is_empty(),
                "r={r} {family:?} not a spanning subgraph"
            );
        }
    }
}

#[test]
fn delta_trace_respects_paper_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for family in [TreeFamily::Path, TreeFamily::RandomBst] {
        let r = 6u8;
        let tree = family.generate(theorem1_size(r), &mut rng);
        let res = theorem1::embed(&tree);
        for (idx, row) in res.trace.iter().enumerate() {
            let i = idx as u8 + 1;
            for (j, &measured) in row.iter().enumerate() {
                if let Some(bound) = theorem1::paper_bound(r, j as u8, i) {
                    assert!(
                        measured <= bound,
                        "{family:?}: Δ({j}, {i}) = {measured} > paper bound {bound}"
                    );
                }
            }
        }
    }
}

//! Property-based tests over randomly generated binary trees: the
//! Theorem-1 pipeline must uphold its invariants for *every* shape, not
//! just the curated families.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{evaluate, theorem1, theorem2};
use xtree::trees::{BinaryTree, TreeFamily};

/// Strategy: a binary tree of `n` nodes from a random family and seed.
fn arb_tree(max_n: usize) -> impl Strategy<Value = BinaryTree> {
    (1..=max_n, any::<u64>(), 0..TreeFamily::ALL.len()).prop_map(|(n, seed, f)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TreeFamily::ALL[f].generate(n, &mut rng)
    })
}

/// Strategy: a tree of exactly the Theorem-1 size for height `r ≤ 4`.
fn arb_exact_tree() -> impl Strategy<Value = BinaryTree> {
    (1u8..=4, any::<u64>(), 0..TreeFamily::ALL.len()).prop_map(|(r, seed, f)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TreeFamily::ALL[f].generate(xtree::trees::theorem1_size(r), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem1_invariants_hold_for_any_tree(tree in arb_tree(600)) {
        let res = theorem1::embed(&tree);
        let s = evaluate(&tree, &res.emb);
        // Total map, bounded load, optimal host, no stranded nodes.
        prop_assert_eq!(res.emb.map.len(), tree.len());
        prop_assert!(s.max_load <= 16);
        prop_assert!(res.emb.host_len() * 16 >= tree.len());
        prop_assert!(res.emb.host_len() == 1
            || ((res.emb.host_len() - 1) / 2) * 16 < tree.len());
        // Constant dilation, tree of any shape.
        prop_assert!(s.dilation <= 3, "dilation {}", s.dilation);
        prop_assert_eq!(s.condition4_violations, 0);
    }

    #[test]
    fn exact_sizes_fill_every_vertex(tree in arb_exact_tree()) {
        let res = theorem1::embed(&tree);
        let load = res.emb.load_vector();
        prop_assert!(load.iter().all(|&c| c == 16));
        let s = evaluate(&tree, &res.emb);
        prop_assert!(s.dilation <= 3);
        prop_assert_eq!(s.condition3_violations, 0);
    }

    #[test]
    fn injectivization_is_injective_and_close(tree in arb_tree(500)) {
        let base = theorem1::embed(&tree).emb;
        let inj = theorem2::injectivize(&base);
        prop_assert!(inj.is_injective());
        let s = evaluate(&tree, &inj);
        prop_assert!(s.dilation <= 11, "dilation {}", s.dilation);
        // Every image sits exactly four levels below its base image.
        for (i, &b) in inj.map.iter().enumerate() {
            prop_assert_eq!(b.level(), base.map[i].level() + 4);
            prop_assert!(base.map[i].is_ancestor_of(b));
        }
    }

    #[test]
    fn hypercube_route_bounds(tree in arb_tree(400)) {
        let q = xtree::core::hypercube::embed_theorem3(&tree);
        prop_assert!(q.max_load() <= 16);
        prop_assert!(q.dilation(&tree) <= 4, "dilation {}", q.dilation(&tree));
        let q8 = xtree::core::hypercube::embed_corollary8(&tree);
        prop_assert!(q8.is_injective());
        prop_assert!(q8.dilation(&tree) <= 8);
    }
}

//! Integration tests of the construction's tunables: every `EmbedOptions`
//! configuration must still produce a *valid* embedding (total, within
//! capacity, everything placed) — the switches trade quality, never
//! correctness.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::theorem1::{embed_with, is_exact_size_cap, optimal_height_cap, EmbedOptions};
use xtree::core::{evaluate, theorem1};
use xtree::trees::TreeFamily;

#[test]
fn every_switch_combination_is_valid() {
    let mut rng = ChaCha8Rng::seed_from_u64(20);
    let tree = TreeFamily::RandomSplit.generate(496, &mut rng);
    for adjust in [false, true] {
        for whole_moves in [false, true] {
            for fine_balance in [false, true] {
                let opts = EmbedOptions {
                    adjust,
                    whole_moves,
                    fine_balance,
                    capacity: 16,
                    ..Default::default()
                };
                let res = embed_with(&tree, opts);
                let s = evaluate(&tree, &res.emb);
                assert_eq!(res.emb.map.len(), 496);
                assert_eq!(s.max_load, 16, "{opts:?}");
                // Quality may degrade without the machinery, but never
                // past the host diameter.
                assert!(s.dilation <= 2 * 4 + 1, "{opts:?}: dilation {}", s.dilation);
            }
        }
    }
}

#[test]
fn capacities_fill_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    for cap in [1u16, 2, 3, 5, 8, 16, 24] {
        let n = cap as usize * ((1usize << 4) - 1); // exact size for r = 3
        assert!(is_exact_size_cap(n, cap));
        assert_eq!(optimal_height_cap(n, cap), 3);
        let tree = TreeFamily::RandomAttach.generate(n, &mut rng);
        let opts = EmbedOptions {
            capacity: cap,
            ..Default::default()
        };
        let res = embed_with(&tree, opts);
        let load = res.emb.load_vector();
        assert!(
            load.iter().all(|&c| c == u32::from(cap)),
            "cap={cap}: {load:?}"
        );
    }
}

#[test]
fn capacity_sixteen_is_where_quality_stabilises() {
    // The A2 finding as a regression test: a path guest at capacity 16
    // keeps dilation ≤ 3; at capacity 4 it degrades well beyond it.
    let r = 5u8;
    let small = embed_with(
        &xtree::trees::generate::path(4 * ((1 << (r + 1)) - 1)),
        EmbedOptions {
            capacity: 4,
            ..Default::default()
        },
    );
    let full = embed_with(
        &xtree::trees::generate::path(16 * ((1 << (r + 1)) - 1)),
        EmbedOptions {
            capacity: 16,
            ..Default::default()
        },
    );
    let t_small = xtree::trees::generate::path(4 * ((1 << (r + 1)) - 1));
    let t_full = xtree::trees::generate::path(16 * ((1 << (r + 1)) - 1));
    let d_small = evaluate(&t_small, &small.emb).dilation;
    let d_full = evaluate(&t_full, &full.emb).dilation;
    assert!(
        d_full <= 3,
        "capacity 16 must meet the paper bound, got {d_full}"
    );
    assert!(
        d_small > d_full,
        "capacity 4 ({d_small}) should be strictly worse than 16 ({d_full})"
    );
}

#[test]
fn default_options_match_plain_embed() {
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let tree = TreeFamily::Caterpillar.generate(240, &mut rng);
    let a = theorem1::embed(&tree);
    let b = embed_with(&tree, EmbedOptions::default());
    assert_eq!(a.emb.map, b.emb.map, "embed must be embed_with(default)");
    assert_eq!(a.log, b.log);
}

#[test]
#[should_panic(expected = "capacity must be")]
fn rejects_zero_capacity() {
    let tree = xtree::trees::generate::path(4);
    let _ = embed_with(
        &tree,
        EmbedOptions {
            capacity: 0,
            ..Default::default()
        },
    );
}

#[test]
fn ablation_configs_do_not_panic_on_small_intervals() {
    // Regression (code review): with whole moves disabled, ADJUST's split
    // branch used to call Lemma 2 with Δ larger than the interval, hitting
    // the lemma's `1 ≤ Δ ≤ n` assertion.
    let tree = xtree::trees::generate::path(248);
    let res = embed_with(
        &tree,
        EmbedOptions {
            capacity: 8,
            whole_moves: false,
            ..Default::default()
        },
    );
    assert_eq!(res.emb.map.len(), 248);
    let s = evaluate(&tree, &res.emb);
    assert!(s.max_load <= 8);
}

//! End-to-end pipeline tests: guest tree → embedding → simulated program,
//! spanning all four crates.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{evaluate, hypercube, theorem1};
use xtree::sim::{run_rounds, simulate_all, workload, Network};
use xtree::topology::{Hypercube, XTree};
use xtree::trees::{theorem1_size, theorem3_size, TreeFamily};

#[test]
fn exchange_cycles_bounded_by_dilation_times_congestion() {
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let r = 4u8;
    let tree = TreeFamily::RandomBst.generate(theorem1_size(r), &mut rng);
    let emb = theorem1::embed(&tree).emb;
    let stats = evaluate(&tree, &emb);
    let host = XTree::new(r);
    let net = Network::new(host.graph().clone()).unwrap();

    let batch = run_rounds(&net, &[workload::exchange_round(&tree, &emb)]).unwrap();
    let ex = &batch[0];
    // Every message needs at most `dilation` hops; with load 16 the
    // per-link pressure is bounded, so the exchange finishes in a small
    // constant number of cycles.
    assert!(ex.ideal_cycles <= stats.dilation);
    assert!(
        ex.cycles <= stats.dilation * ex.max_link_traffic,
        "{} cycles vs dilation {} × traffic {}",
        ex.cycles,
        stats.dilation,
        ex.max_link_traffic
    );
}

#[test]
fn broadcast_on_xtree_close_to_ideal() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for family in [TreeFamily::RandomAttach, TreeFamily::Caterpillar] {
        let tree = family.generate(theorem1_size(4), &mut rng);
        let emb = theorem1::embed(&tree).emb;
        let host = XTree::new(4);
        let net = Network::new(host.graph().clone()).unwrap();
        let reports = simulate_all(&net, &tree, &emb).unwrap();
        let bc = reports.iter().find(|r| r.workload == "broadcast").unwrap();
        assert!(
            (bc.cycles as f64) <= 2.0 * bc.ideal_cycles as f64 + 16.0,
            "{family:?}: broadcast {} vs ideal {}",
            bc.cycles,
            bc.ideal_cycles
        );
    }
}

#[test]
fn same_guest_runs_on_both_hosts() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let tree = TreeFamily::Broom.generate(theorem3_size(5), &mut rng);

    let x = theorem1::embed(&tree).emb;
    let xnet = Network::xtree(&XTree::new(x.height));
    let xr = simulate_all(&xnet, &tree, &x).unwrap();

    let q = hypercube::embed_theorem3(&tree);
    let qnet = Network::hypercube(&Hypercube::new(q.dim));
    let qr = simulate_all(&qnet, &tree, &q).unwrap();

    for (a, b) in xr.iter().zip(qr.iter()) {
        assert_eq!(a.workload, b.workload);
        assert!(a.cycles > 0 && b.cycles > 0);
        // The hypercube host pays at most one extra hop per message
        // (Lemma 3 distortion), so its ideal cycles are within ~2× plus
        // per-level slack of the X-tree's.
        assert!(
            b.ideal_cycles <= 2 * a.ideal_cycles + 64,
            "{}: {} vs {}",
            a.workload,
            b.ideal_cycles,
            a.ideal_cycles
        );
    }
}

#[test]
fn non_exact_guest_still_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let tree = TreeFamily::RandomSplit.generate(500, &mut rng);
    let emb = theorem1::embed(&tree).emb;
    let net = Network::xtree(&XTree::new(emb.height));
    let reports = simulate_all(&net, &tree, &emb).unwrap();
    assert_eq!(reports.len(), 4);
    for r in reports {
        assert!(r.cycles >= r.ideal_cycles);
    }
}

//! Large-scale stress runs (not part of the default test pass — run with
//! `cargo test --release --test stress -- --ignored`).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xtree::core::{evaluate, theorem1, theorem2};
use xtree::trees::{theorem1_size, TreeFamily};

#[test]
#[ignore = "large: ~130k-node guests"]
fn theorem1_at_r12() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for family in [TreeFamily::Path, TreeFamily::RandomBst, TreeFamily::Leaning] {
        let n = theorem1_size(12); // 131 056 nodes
        let tree = family.generate(n, &mut rng);
        let res = theorem1::embed(&tree);
        let s = evaluate(&tree, &res.emb);
        assert!(s.dilation <= 3, "{family:?}: {}", s.dilation);
        assert_eq!(s.max_load, 16);
        assert_eq!(s.condition3_violations, 0);
    }
}

#[test]
#[ignore = "large: injective pipeline at 32k nodes"]
fn theorem2_at_r10() {
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let tree = TreeFamily::Caterpillar.generate(theorem1_size(10), &mut rng);
    let inj = theorem2::injectivize(&theorem1::embed(&tree).emb);
    let s = evaluate(&tree, &inj);
    assert!(s.injective);
    assert!(s.dilation <= 11);
}
